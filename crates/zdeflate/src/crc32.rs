//! CRC-32 (IEEE 802.3, the polynomial used by gzip), table-driven.

/// Streaming CRC-32 accumulator.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a new checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32 of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut c = Crc32::new();
        for chunk in data.chunks(77) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), whole);
    }
}
