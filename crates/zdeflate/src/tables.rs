//! The DEFLATE length/distance code tables (RFC 1951 §3.2.5) and the fixed
//! Huffman code (§3.2.6).

/// (base length, extra bits) for length codes 257..=285.
pub const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) for distance codes 0..=29.
pub const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Smallest representable match length.
pub const MIN_MATCH: usize = 3;
/// Largest representable match length.
pub const MAX_MATCH: usize = 258;
/// LZ77 window size.
pub const WINDOW_SIZE: usize = 32 * 1024;

/// Find the length code for a match length in `[3, 258]`.
/// Returns (code index 0..29 relative to 257, extra bits value, extra bit
/// count).
pub fn length_code(len: usize) -> (usize, u32, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // The table is sorted by base; find the last entry with base <= len.
    let mut idx = LENGTH_TABLE
        .partition_point(|&(base, _)| base as usize <= len)
        .saturating_sub(1);
    // Length 258 has its own code (entry 28) even though entry 27's range
    // (227 + 5 extra bits = up to 258) overlaps it.
    if len == 258 {
        idx = 28;
    }
    let (base, extra) = LENGTH_TABLE[idx];
    (idx, (len - base as usize) as u32, extra)
}

/// Find the distance code for a distance in `[1, 32768]`.
/// Returns (code 0..29, extra bits value, extra bit count).
pub fn dist_code(dist: usize) -> (usize, u32, u8) {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    let idx = DIST_TABLE
        .partition_point(|&(base, _)| base as usize <= dist)
        .saturating_sub(1);
    let (base, extra) = DIST_TABLE[idx];
    (idx, (dist - base as usize) as u32, extra)
}

/// Fixed-Huffman code and bit length for a literal/length symbol (0..=287).
pub fn fixed_litlen_code(sym: usize) -> (u32, u32) {
    match sym {
        0..=143 => ((0b0011_0000 + sym) as u32, 8),
        144..=255 => ((0b1_1001_0000 + (sym - 144)) as u32, 9),
        256..=279 => ((sym - 256) as u32, 7),
        280..=287 => ((0b1100_0000 + (sym - 280)) as u32, 8),
        _ => unreachable!("symbol out of range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_codes_cover_all_lengths() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (idx, extra_val, extra_bits) = length_code(len);
            let (base, eb) = LENGTH_TABLE[idx];
            assert_eq!(eb, extra_bits);
            assert_eq!(base as usize + extra_val as usize, len, "len {len}");
            assert!(extra_val < (1 << extra_bits).max(1), "len {len}");
        }
    }

    #[test]
    fn length_258_uses_code_285() {
        let (idx, extra, bits) = length_code(258);
        assert_eq!(idx, 28); // code 285
        assert_eq!(extra, 0);
        assert_eq!(bits, 0);
    }

    #[test]
    fn dist_codes_cover_all_distances() {
        for dist in 1..=WINDOW_SIZE {
            let (idx, extra_val, extra_bits) = dist_code(dist);
            let (base, eb) = DIST_TABLE[idx];
            assert_eq!(eb, extra_bits);
            assert_eq!(base as usize + extra_val as usize, dist, "dist {dist}");
        }
    }

    #[test]
    fn fixed_code_shape() {
        assert_eq!(fixed_litlen_code(0), (0x30, 8));
        assert_eq!(fixed_litlen_code(143), (0xbf, 8));
        assert_eq!(fixed_litlen_code(144), (0x190, 9));
        assert_eq!(fixed_litlen_code(255), (0x1ff, 9));
        assert_eq!(fixed_litlen_code(256), (0, 7)); // end of block
        assert_eq!(fixed_litlen_code(279), (0x17, 7));
        assert_eq!(fixed_litlen_code(280), (0xc0, 8));
        assert_eq!(fixed_litlen_code(287), (0xc7, 8));
    }
}
