//! gzip framing (RFC 1952) with a zlib-like streaming API.
//!
//! The thesis' capture application calls `gzopen()` / `gzwrite()` /
//! `gzclose()` on every packet to model analysis load (§6.3.4);
//! [`GzWriter`] mirrors that interface.

use crate::crc32::Crc32;
use crate::deflate::deflate;
use crate::inflate::InflateError;

const GZ_MAGIC: [u8; 2] = [0x1f, 0x8b];
const CM_DEFLATE: u8 = 8;

/// Streaming gzip compressor.
///
/// Data written via [`GzWriter::write`] is buffered and compressed in
/// chunks; [`GzWriter::finish`] emits the trailer and returns the complete
/// member. Mirrors `gzopen`/`gzwrite`/`gzclose`.
#[derive(Debug)]
pub struct GzWriter {
    level: u8,
    crc: Crc32,
    isize: u32,
    buf: Vec<u8>,
    out: Vec<u8>,
    /// Compress (flush the internal buffer) whenever it exceeds this.
    chunk: usize,
    total_in: u64,
    total_out: u64,
}

impl GzWriter {
    /// Start a gzip stream at the given compression level (0–9).
    pub fn new(level: u8) -> GzWriter {
        let mut out = Vec::new();
        out.extend_from_slice(&GZ_MAGIC);
        out.push(CM_DEFLATE);
        out.push(0); // FLG: no name, no comment
        out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
        out.push(match level {
            9 => 2,     // XFL: maximum compression
            0..=1 => 4, // XFL: fastest
            _ => 0,
        });
        out.push(255); // OS: unknown
        GzWriter {
            level: level.min(9),
            crc: Crc32::new(),
            isize: 0,
            buf: Vec::new(),
            out,
            chunk: 64 * 1024,
            total_in: 0,
            total_out: 0,
        }
    }

    /// Append data to the stream (the `gzwrite` analogue).
    pub fn write(&mut self, data: &[u8]) {
        self.crc.update(data);
        self.isize = self.isize.wrapping_add(data.len() as u32);
        self.total_in += data.len() as u64;
        self.buf.extend_from_slice(data);
        // Note: each flush produces an independent DEFLATE stream; we mark
        // every block non-final except the last by concatenating *members*
        // instead. Simpler and still standard: buffer until finish, but cap
        // memory by flushing whole members for very large streams.
        if self.buf.len() >= self.chunk * 16 {
            self.flush_member();
        }
    }

    fn flush_member(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let body = deflate(&self.buf, self.level);
        self.total_out += body.len() as u64;
        self.out.extend_from_slice(&body);
        self.out.extend_from_slice(&self.crc.finish().to_le_bytes());
        self.out.extend_from_slice(&self.isize.to_le_bytes());
        // Start a new member for subsequent data.
        self.buf.clear();
        self.crc = Crc32::new();
        self.isize = 0;
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&GZ_MAGIC);
        hdr.push(CM_DEFLATE);
        hdr.push(0);
        hdr.extend_from_slice(&[0, 0, 0, 0]);
        hdr.push(0);
        hdr.push(255);
        self.out.extend_from_slice(&hdr);
    }

    /// Bytes consumed so far.
    pub fn total_in(&self) -> u64 {
        self.total_in
    }

    /// Finish the stream (the `gzclose` analogue) and return the complete
    /// gzip bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let body = deflate(&self.buf, self.level);
        self.out.extend_from_slice(&body);
        self.out.extend_from_slice(&self.crc.finish().to_le_bytes());
        self.out.extend_from_slice(&self.isize.to_le_bytes());
        self.out
    }
}

/// Errors from [`gunzip`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GzError {
    /// Missing or wrong magic/method bytes.
    BadHeader,
    /// The DEFLATE body failed to decode.
    Body(InflateError),
    /// CRC or length trailer mismatch.
    BadTrailer,
}

impl core::fmt::Display for GzError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GzError::BadHeader => write!(f, "bad gzip header"),
            GzError::Body(e) => write!(f, "bad deflate body: {e}"),
            GzError::BadTrailer => write!(f, "gzip trailer mismatch"),
        }
    }
}

impl std::error::Error for GzError {}

/// Decompress a gzip stream (possibly multiple concatenated members,
/// as `gzip -c` and [`GzWriter`] produce).
pub fn gunzip(mut data: &[u8]) -> Result<Vec<u8>, GzError> {
    let mut out = Vec::new();
    loop {
        if data.len() < 10 || data[0..2] != GZ_MAGIC || data[2] != CM_DEFLATE {
            return Err(GzError::BadHeader);
        }
        let flg = data[3];
        let mut at = 10usize;
        if flg & 0x04 != 0 {
            // FEXTRA
            if data.len() < at + 2 {
                return Err(GzError::BadHeader);
            }
            let xlen = u16::from_le_bytes([data[at], data[at + 1]]) as usize;
            at += 2 + xlen;
        }
        for flag in [0x08u8, 0x10] {
            // FNAME / FCOMMENT: zero-terminated strings
            if flg & flag != 0 {
                while at < data.len() && data[at] != 0 {
                    at += 1;
                }
                at += 1;
            }
        }
        if flg & 0x02 != 0 {
            at += 2; // FHCRC
        }
        if at > data.len() {
            return Err(GzError::BadHeader);
        }
        let body = &data[at..];
        let (decoded, consumed) =
            crate::inflate::inflate_with_consumed(body).map_err(GzError::Body)?;
        let trailer_at = at + consumed;
        if data.len() < trailer_at + 8 {
            return Err(GzError::BadTrailer);
        }
        let crc = u32::from_le_bytes(data[trailer_at..trailer_at + 4].try_into().expect("4"));
        let isz = u32::from_le_bytes(data[trailer_at + 4..trailer_at + 8].try_into().expect("4"));
        if crc != crate::crc32::crc32(&decoded) || isz != decoded.len() as u32 {
            return Err(GzError::BadTrailer);
        }
        out.extend_from_slice(&decoded);
        data = &data[trailer_at + 8..];
        if data.is_empty() {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let mut w = GzWriter::new(6);
        w.write(b"hello gzip world, hello gzip world");
        let gz = w.finish();
        assert_eq!(&gz[0..2], &GZ_MAGIC);
        assert_eq!(gunzip(&gz).unwrap(), b"hello gzip world, hello gzip world");
    }

    #[test]
    fn roundtrip_incremental_writes() {
        let mut w = GzWriter::new(3);
        let mut expect = Vec::new();
        for i in 0..100u32 {
            let chunk = format!("packet payload number {i} with some repetition repetition\n");
            w.write(chunk.as_bytes());
            expect.extend_from_slice(chunk.as_bytes());
        }
        assert_eq!(w.total_in(), expect.len() as u64);
        let gz = w.finish();
        assert_eq!(gunzip(&gz).unwrap(), expect);
        assert!(gz.len() < expect.len() / 2);
    }

    #[test]
    fn roundtrip_all_levels_empty_and_binary() {
        for level in 0..=9u8 {
            let w = GzWriter::new(level);
            let gz = w.finish();
            assert_eq!(gunzip(&gz).unwrap(), b"");

            let mut w = GzWriter::new(level);
            let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
            w.write(&data);
            assert_eq!(gunzip(&w.finish()).unwrap(), data);
        }
    }

    #[test]
    fn detects_corruption() {
        let mut w = GzWriter::new(6);
        w.write(b"some important data some important data");
        let mut gz = w.finish();
        let n = gz.len();
        gz[n - 5] ^= 0xff; // clobber CRC
        assert!(gunzip(&gz).is_err());
        assert_eq!(gunzip(b"not a gzip"), Err(GzError::BadHeader));
    }

    #[test]
    fn multi_member_streams() {
        let mut a = GzWriter::new(5);
        a.write(b"first member ");
        let mut gz = a.finish();
        let mut b = GzWriter::new(5);
        b.write(b"second member");
        gz.extend_from_slice(&b.finish());
        assert_eq!(gunzip(&gz).unwrap(), b"first member second member");
    }
}
