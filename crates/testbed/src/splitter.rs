//! The passive optical splitter (thesis §2.3, §3.3).
//!
//! A passive splitter duplicates the light of one fiber onto several
//! outputs; it has no buffers, no electronics and therefore no loss or
//! reordering — which is exactly why the thesis uses one to feed all four
//! sniffers the same packets. Its only physical effect is a reduced
//! signal level per output: each two-way split costs ~3.5 dB, and the
//! receivers need the level to stay above their sensitivity budget.

/// A passive optical splitter with `ways` outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalSplitter {
    ways: u32,
    /// Input signal budget above receiver sensitivity, in dB.
    input_budget_db: f64,
}

/// Per-two-way-split insertion loss in dB (3 dB split + excess).
const SPLIT_LOSS_DB: f64 = 3.5;

impl OpticalSplitter {
    /// A splitter with the given number of outputs and the short-cable
    /// budget of the thesis testbed (~11 dB of headroom).
    pub fn new(ways: u32) -> OpticalSplitter {
        assert!(ways >= 1, "a splitter needs at least one output");
        OpticalSplitter {
            ways,
            input_budget_db: 11.0,
        }
    }

    /// Number of outputs.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Optical loss per output in dB.
    pub fn loss_db(&self) -> f64 {
        (self.ways as f64).log2().ceil() * SPLIT_LOSS_DB
    }

    /// Whether the receivers still see a usable signal. The thesis notes
    /// the splitters "seem to be no problem, at least with the short
    /// cables that are used" (§2.3) — four ways fit the budget; many more
    /// would not.
    pub fn signal_ok(&self) -> bool {
        self.loss_db() <= self.input_budget_db
    }

    /// Duplicate one timed packet stream into `ways` identical vectors.
    /// Passive and lossless: every output sees every packet at the same
    /// time (the methodology's requirement that each sniffer gets the
    /// same input).
    pub fn split<I, T: Clone>(&self, input: I) -> Vec<Vec<T>>
    where
        I: IntoIterator<Item = T>,
    {
        assert!(
            self.signal_ok(),
            "optical budget exceeded: {} dB loss over {} dB headroom",
            self.loss_db(),
            self.input_budget_db
        );
        let source: Vec<T> = input.into_iter().collect();
        (0..self.ways).map(|_| source.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_split_is_within_budget() {
        let s = OpticalSplitter::new(4);
        assert_eq!(s.ways(), 4);
        assert!((s.loss_db() - 7.0).abs() < 1e-9);
        assert!(s.signal_ok());
    }

    #[test]
    fn excessive_splitting_fails_the_budget() {
        let s = OpticalSplitter::new(32);
        assert!(!s.signal_ok());
    }

    #[test]
    fn outputs_are_identical() {
        let s = OpticalSplitter::new(3);
        let outs = s.split(vec![1, 2, 3]);
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert_eq!(o, &vec![1, 2, 3]);
        }
    }

    #[test]
    #[should_panic(expected = "optical budget exceeded")]
    fn split_panics_when_signal_too_weak() {
        OpticalSplitter::new(64).split(vec![1]);
    }
}
