//! The passive optical splitter (thesis §2.3, §3.3).
//!
//! A passive splitter duplicates the light of one fiber onto several
//! outputs; it has no buffers, no electronics and therefore no loss or
//! reordering — which is exactly why the thesis uses one to feed all four
//! sniffers the same packets. Its only physical effect is a reduced
//! signal level per output: each two-way split costs ~3.5 dB, and the
//! receivers need the level to stay above their sensitivity budget.
//!
//! In the simulation the splitter is the *broadcast stage* of the
//! streaming pipeline: [`OpticalSplitter::channel`] produces one
//! [`SplitterSender`] and one bounded [`SplitterOutput`] queue per way.
//! The generator thread broadcasts each [`Chunk`] (an `Arc`, so a pointer
//! copy per way — passive duplication) and each machine simulation
//! consumes its own queue concurrently. Queues are bounded, so a slow
//! sniffer exerts backpressure on the generator instead of letting memory
//! grow with the run length; every output still sees every chunk in
//! order, which is what keeps the streamed results byte-identical to the
//! materialized path.

use pcs_pktgen::{Chunk, PacketSource};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A passive optical splitter with `ways` outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticalSplitter {
    ways: u32,
    /// Input signal budget above receiver sensitivity, in dB.
    input_budget_db: f64,
}

/// Per-two-way-split insertion loss in dB (3 dB split + excess).
const SPLIT_LOSS_DB: f64 = 3.5;

impl OpticalSplitter {
    /// A splitter with the given number of outputs and the short-cable
    /// budget of the thesis testbed (~11 dB of headroom).
    pub fn new(ways: u32) -> OpticalSplitter {
        assert!(ways >= 1, "a splitter needs at least one output");
        OpticalSplitter {
            ways,
            input_budget_db: 11.0,
        }
    }

    /// Number of outputs.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Optical loss per output in dB.
    pub fn loss_db(&self) -> f64 {
        (self.ways as f64).log2().ceil() * SPLIT_LOSS_DB
    }

    /// Whether the receivers still see a usable signal. The thesis notes
    /// the splitters "seem to be no problem, at least with the short
    /// cables that are used" (§2.3) — four ways fit the budget; many more
    /// would not.
    pub fn signal_ok(&self) -> bool {
        self.loss_db() <= self.input_budget_db
    }

    /// Duplicate one timed packet stream into `ways` identical vectors.
    /// Passive and lossless: every output sees every packet at the same
    /// time (the methodology's requirement that each sniffer gets the
    /// same input).
    pub fn split<I, T: Clone>(&self, input: I) -> Vec<Vec<T>>
    where
        I: IntoIterator<Item = T>,
    {
        assert!(
            self.signal_ok(),
            "optical budget exceeded: {} dB loss over {} dB headroom",
            self.loss_db(),
            self.input_budget_db
        );
        let source: Vec<T> = input.into_iter().collect();
        (0..self.ways).map(|_| source.clone()).collect()
    }

    /// Open the streaming broadcast: one bounded queue of at most `depth`
    /// chunks per output (clamped to ≥ 1).
    ///
    /// The [`SplitterSender`] blocks while *any* output's queue is full —
    /// the slowest consumer paces the generator — and closing it (drop)
    /// lets every output drain its remaining chunks and then observe end
    /// of stream. Panics when the optical budget is exceeded, like
    /// [`OpticalSplitter::split`].
    pub fn channel(&self, depth: usize) -> (SplitterSender, Vec<SplitterOutput>) {
        assert!(
            self.signal_ok(),
            "optical budget exceeded: {} dB loss over {} dB headroom",
            self.loss_db(),
            self.input_budget_db
        );
        let queues: Vec<Arc<ChunkQueue>> = (0..self.ways)
            .map(|_| Arc::new(ChunkQueue::new(depth.max(1))))
            .collect();
        let outputs = queues
            .iter()
            .map(|queue| SplitterOutput {
                queue: Arc::clone(queue),
            })
            .collect();
        (SplitterSender { queues }, outputs)
    }
}

/// One output's bounded chunk queue.
struct ChunkQueue {
    state: Mutex<ChunkQueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
}

struct ChunkQueueState {
    chunks: VecDeque<Chunk>,
    closed: bool,
}

impl ChunkQueue {
    fn new(depth: usize) -> ChunkQueue {
        ChunkQueue {
            state: Mutex::new(ChunkQueueState {
                chunks: VecDeque::with_capacity(depth),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth,
        }
    }

    /// Blocking bounded push; a no-op once the receiver hung up.
    fn push(&self, chunk: Chunk) {
        let mut state = self.state.lock().expect("splitter queue poisoned");
        while state.chunks.len() >= self.depth && !state.closed {
            state = self.not_full.wait(state).expect("splitter queue poisoned");
        }
        if !state.closed {
            state.chunks.push_back(chunk);
            self.not_empty.notify_one();
        }
    }

    /// Blocking pop; `None` once the sender closed and the queue drained.
    fn pop(&self) -> Option<Chunk> {
        let mut state = self.state.lock().expect("splitter queue poisoned");
        loop {
            if let Some(chunk) = state.chunks.pop_front() {
                self.not_full.notify_one();
                return Some(chunk);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("splitter queue poisoned");
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("splitter queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The generator side of [`OpticalSplitter::channel`]. Dropping it ends
/// the stream for every output.
pub struct SplitterSender {
    queues: Vec<Arc<ChunkQueue>>,
}

impl SplitterSender {
    /// Broadcast one chunk to every output, blocking while the slowest
    /// output's queue is full (pipeline backpressure).
    pub fn broadcast(&self, chunk: &Chunk) {
        for queue in &self.queues {
            queue.push(Arc::clone(chunk));
        }
    }
}

impl Drop for SplitterSender {
    fn drop(&mut self) {
        for queue in &self.queues {
            queue.close();
        }
    }
}

/// One splitter output: a [`PacketSource`] fed by the sender's
/// broadcasts, consumed by one machine simulation.
pub struct SplitterOutput {
    queue: Arc<ChunkQueue>,
}

impl PacketSource for SplitterOutput {
    fn next_chunk(&mut self) -> Option<Chunk> {
        self.queue.pop()
    }
}

impl Drop for SplitterOutput {
    fn drop(&mut self) {
        // Unblock the sender if this consumer bails early (e.g. a
        // panicking sniffer thread): further pushes become no-ops.
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_split_is_within_budget() {
        let s = OpticalSplitter::new(4);
        assert_eq!(s.ways(), 4);
        assert!((s.loss_db() - 7.0).abs() < 1e-9);
        assert!(s.signal_ok());
    }

    #[test]
    fn excessive_splitting_fails_the_budget() {
        let s = OpticalSplitter::new(32);
        assert!(!s.signal_ok());
    }

    #[test]
    fn outputs_are_identical() {
        let s = OpticalSplitter::new(3);
        let outs = s.split(vec![1, 2, 3]);
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert_eq!(o, &vec![1, 2, 3]);
        }
    }

    #[test]
    #[should_panic(expected = "optical budget exceeded")]
    fn split_panics_when_signal_too_weak() {
        OpticalSplitter::new(64).split(vec![1]);
    }

    use pcs_pktgen::{ChunkedGenerator, Generator, PktgenConfig, TimedPacket, TxModel};

    fn chunks(count: u64, per_chunk: usize) -> Vec<Chunk> {
        let gen = Generator::new(
            PktgenConfig {
                count,
                ..PktgenConfig::default()
            },
            TxModel::syskonnect(),
            1,
        );
        let mut source = ChunkedGenerator::new(gen, per_chunk);
        let mut out = Vec::new();
        while let Some(c) = source.next_chunk() {
            out.push(c);
        }
        out
    }

    #[test]
    fn channel_broadcasts_every_chunk_in_order_to_every_output() {
        let input = chunks(100, 16);
        let (sender, outputs) = OpticalSplitter::new(3).channel(input.len());
        for c in &input {
            sender.broadcast(c);
        }
        drop(sender);
        let flat: Vec<TimedPacket> = input.iter().flat_map(|c| c.iter().cloned()).collect();
        for mut out in outputs {
            let mut seen = Vec::new();
            while let Some(c) = out.next_chunk() {
                seen.extend(c.iter().cloned());
            }
            assert_eq!(seen, flat);
        }
    }

    #[test]
    fn bounded_queue_applies_backpressure_to_the_sender() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let input = chunks(50, 10); // 5 chunks
        let n = input.len();
        let (sender, mut outputs) = OpticalSplitter::new(1).channel(1);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for c in &input {
                    sender.broadcast(c);
                    sent.fetch_add(1, Ordering::SeqCst);
                }
                drop(sender);
            });
            // Give the sender ample time: with depth 1 it must stall
            // after the first accepted chunk, long before all 5.
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert!(
                sent.load(Ordering::SeqCst) < n,
                "sender ran ahead of the bounded queue"
            );
            let mut got = 0;
            while outputs[0].next_chunk().is_some() {
                got += 1;
            }
            assert_eq!(got, n);
        });
        assert_eq!(sent.load(Ordering::SeqCst), n);
    }

    #[test]
    fn dropped_output_does_not_wedge_the_sender() {
        let input = chunks(40, 4); // 10 chunks, depth 1
        let n = input.len();
        let (sender, outputs) = OpticalSplitter::new(2).channel(1);
        std::thread::scope(|scope| {
            let mut keep = None;
            for (i, out) in outputs.into_iter().enumerate() {
                if i == 0 {
                    drop(out); // this sniffer died immediately
                } else {
                    keep = Some(out);
                }
            }
            let mut keep = keep.unwrap();
            scope.spawn(move || {
                let mut got = 0;
                while keep.next_chunk().is_some() {
                    got += 1;
                }
                assert_eq!(got, n);
            });
            for c in &input {
                sender.broadcast(c); // must not deadlock on the dead way
            }
            drop(sender);
        });
    }

    #[test]
    #[should_panic(expected = "optical budget exceeded")]
    fn channel_panics_when_signal_too_weak() {
        OpticalSplitter::new(64).channel(4);
    }
}
