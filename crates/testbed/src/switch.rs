//! The monitoring switch (a Cisco C3500XL in the thesis, §3.3) with its
//! SNMP packet counters and VLAN separation.
//!
//! The generator feeds port Gi0/6; the splitter hangs off a monitor port;
//! the control host reads the interface counters over SNMP before and
//! after each generation run to verify that every generated packet really
//! went out on the fiber (the requirement of §3.2).

use pcs_wire::SimPacket;
use std::collections::BTreeMap;

/// Interface counters, SNMP IF-MIB style.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfCounters {
    /// ifInUcastPkts.
    pub in_pkts: u64,
    /// ifInOctets.
    pub in_octets: u64,
    /// ifOutUcastPkts.
    pub out_pkts: u64,
    /// ifOutOctets.
    pub out_octets: u64,
}

/// The measurement switch: one input port (from `gen`), one mirrored
/// output port (to the splitter), VLAN-isolated from the control traffic.
#[derive(Debug, Clone, Default)]
pub struct MonitorSwitch {
    ports: BTreeMap<u16, IfCounters>,
    /// (input port, mirror port) of the data VLAN.
    data_vlan: Option<(u16, u16)>,
}

impl MonitorSwitch {
    /// A switch with the thesis' configuration: data in on Gi0/6,
    /// mirrored out on Gi0/8 toward the splitter (VLAN 101).
    pub fn thesis_setup() -> MonitorSwitch {
        let mut s = MonitorSwitch::default();
        s.configure_mirror(6, 8);
        s
    }

    /// Configure the monitored VLAN pair.
    pub fn configure_mirror(&mut self, in_port: u16, mirror_port: u16) {
        self.data_vlan = Some((in_port, mirror_port));
        self.ports.entry(in_port).or_default();
        self.ports.entry(mirror_port).or_default();
    }

    /// Account one frame passing from the generator to the splitter.
    pub fn forward(&mut self, pkt: &SimPacket) {
        let (inp, outp) = self.data_vlan.expect("mirror not configured");
        let c = self.ports.get_mut(&inp).expect("port exists");
        c.in_pkts += 1;
        c.in_octets += pkt.frame_len as u64;
        let c = self.ports.get_mut(&outp).expect("port exists");
        c.out_pkts += 1;
        c.out_octets += pkt.frame_len as u64;
    }

    /// SNMP read of one port's counters (the control host's step 2/4 in
    /// the measurement cycle, Fig. 3.2).
    pub fn snmp_read(&self, port: u16) -> IfCounters {
        self.ports.get(&port).copied().unwrap_or_default()
    }

    /// Difference of two reads: packets seen between them.
    pub fn delta(before: &IfCounters, after: &IfCounters) -> IfCounters {
        IfCounters {
            in_pkts: after.in_pkts - before.in_pkts,
            in_octets: after.in_octets - before.in_octets,
            out_pkts: after.out_pkts - before.out_pkts,
            out_octets: after.out_octets - before.out_octets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_wire::MacAddr;
    use std::net::Ipv4Addr;

    fn pkt(len: u32) -> SimPacket {
        SimPacket::build_udp(
            0,
            0,
            len,
            MacAddr::ZERO,
            MacAddr::BROADCAST,
            Ipv4Addr::new(192, 168, 10, 100),
            Ipv4Addr::new(192, 168, 10, 12),
            9,
            9,
        )
    }

    #[test]
    fn counters_track_forwarded_frames() {
        let mut s = MonitorSwitch::thesis_setup();
        let before_in = s.snmp_read(6);
        let before_out = s.snmp_read(8);
        for _ in 0..10 {
            s.forward(&pkt(100));
        }
        let din = MonitorSwitch::delta(&before_in, &s.snmp_read(6));
        let dout = MonitorSwitch::delta(&before_out, &s.snmp_read(8));
        assert_eq!(din.in_pkts, 10);
        assert_eq!(din.in_octets, 1000);
        assert_eq!(dout.out_pkts, 10);
        assert_eq!(dout.out_octets, 1000);
    }

    #[test]
    fn unknown_port_reads_zero() {
        let s = MonitorSwitch::thesis_setup();
        assert_eq!(s.snmp_read(99), IfCounters::default());
    }
}
