//! Parallel execution of sweep cells (MoonGen-style worker pool).
//!
//! The evaluation is a grid of independent cells — (rate × repeat) inside
//! one sweep, whole experiments at the CLI level. The DES is
//! deterministic by construction (per-component seeded PCG streams, no
//! host-time dependence), so cells can run on any thread in any order and
//! the merged results are still bit-identical to a serial run: the pool
//! assigns cells to workers dynamically but writes every result back into
//! its input-order slot.

use pcs_des::{BatchProbe, PoolProbe};
use pcs_faultsim::FaultPlan;
use pcs_trace::TraceCollector;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters a sweep (or a whole CLI run) accumulates while executing.
///
/// The cache/stream counters are always maintained (they are cheap
/// relaxed increments). The host-side *profiling* set — per-cell wall
/// time and cache-hit service latencies — is only collected after
/// [`ExecStats::enable_profiling`] (CLI `--profile`), because it reads
/// the host clock; it describes execution speed, never simulation
/// results.
#[derive(Debug, Default)]
pub struct ExecStats {
    cells_run: AtomicU64,
    cells_cached: AtomicU64,
    cells_validated: AtomicU64,
    streams_generated: AtomicU64,
    streams_shared: AtomicU64,
    peak_stream_bytes: AtomicU64,
    profile: AtomicBool,
    cell_wall_ns: AtomicU64,
    cell_wall_ns_max: AtomicU64,
    run_cache_hit_ns: AtomicU64,
    stream_subscribe_ns: AtomicU64,
    /// Hot-path buffer-pool counters published by every simulated cell
    /// (observability only — never part of any simulation result).
    sim_pools: Arc<PoolProbe>,
    /// Macro-batching counters (coalesced admission runs, cost-memo
    /// hits, the on/off config bit) published by every simulated cell —
    /// observability only, like the pool probe.
    sim_batches: Arc<BatchProbe>,
}

impl ExecStats {
    /// Record a cell that was actually simulated.
    pub fn record_run(&self) {
        self.cells_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cell served from the [`crate::RunCache`].
    pub fn record_cached(&self) {
        self.cells_cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cell whose reports the invariant oracle checked.
    pub fn record_validated(&self) {
        self.cells_validated.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cell that generated (and published) its packet stream.
    pub fn record_stream_generated(&self) {
        self.streams_generated.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cell that subscribed to an already-published stream
    /// instead of regenerating it.
    pub fn record_stream_shared(&self) {
        self.streams_shared.fetch_add(1, Ordering::Relaxed);
    }

    /// Note the stream cache's resident-byte level observed by a cell;
    /// keeps the high-water mark.
    pub fn note_stream_resident(&self, bytes: u64) {
        self.peak_stream_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Cells simulated so far.
    pub fn cells_run(&self) -> u64 {
        self.cells_run.load(Ordering::Relaxed)
    }

    /// Cells answered from the cache so far.
    pub fn cells_cached(&self) -> u64 {
        self.cells_cached.load(Ordering::Relaxed)
    }

    /// Cells the invariant oracle validated so far.
    pub fn cells_validated(&self) -> u64 {
        self.cells_validated.load(Ordering::Relaxed)
    }

    /// Packet streams generated (stream-cache misses) so far.
    pub fn streams_generated(&self) -> u64 {
        self.streams_generated.load(Ordering::Relaxed)
    }

    /// Packet streams consumed by subscription (stream-cache hits) so far.
    pub fn streams_shared(&self) -> u64 {
        self.streams_shared.load(Ordering::Relaxed)
    }

    /// High-water mark of resident cached stream bytes observed by this
    /// execution's cells.
    pub fn peak_stream_bytes(&self) -> u64 {
        self.peak_stream_bytes.load(Ordering::Relaxed)
    }

    /// Turn on host-side profiling for every execution sharing these
    /// counters.
    pub fn enable_profiling(&self) {
        self.profile.store(true, Ordering::Relaxed);
    }

    /// Whether host-side profiling is being collected.
    pub fn profiling(&self) -> bool {
        self.profile.load(Ordering::Relaxed)
    }

    /// Record one simulated cell's wall-clock time (profiling only).
    pub fn note_cell_wall(&self, ns: u64) {
        self.cell_wall_ns.fetch_add(ns, Ordering::Relaxed);
        self.cell_wall_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record the service time of one run-cache hit (profiling only).
    pub fn note_run_cache_hit(&self, ns: u64) {
        self.run_cache_hit_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record the acquisition time of one stream-cache subscription
    /// (profiling only).
    pub fn note_stream_subscribe(&self, ns: u64) {
        self.stream_subscribe_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total wall-clock nanoseconds spent simulating cells. Dividing by
    /// `elapsed × jobs` gives the worker pool's utilization.
    pub fn cell_wall_ns(&self) -> u64 {
        self.cell_wall_ns.load(Ordering::Relaxed)
    }

    /// Slowest single cell's wall-clock nanoseconds.
    pub fn cell_wall_ns_max(&self) -> u64 {
        self.cell_wall_ns_max.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds spent serving run-cache hits.
    pub fn run_cache_hit_ns(&self) -> u64 {
        self.run_cache_hit_ns.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds spent acquiring stream-cache
    /// subscriptions.
    pub fn stream_subscribe_ns(&self) -> u64 {
        self.stream_subscribe_ns.load(Ordering::Relaxed)
    }

    /// The shared probe that every simulated cell publishes its hot-path
    /// buffer-pool counters into (clone it into a
    /// [`pcs_oskernel::MachineSim::with_pool_probe`] call).
    pub fn sim_pools(&self) -> &Arc<PoolProbe> {
        &self.sim_pools
    }

    /// The shared probe that every simulated cell publishes its
    /// macro-batching counters into (clone it into a
    /// [`pcs_oskernel::MachineSim::with_batch_probe`] call).
    pub fn sim_batches(&self) -> &Arc<BatchProbe> {
        &self.sim_batches
    }
}

/// How a cell streams packets from the generator to its sniffers.
///
/// These are *execution* knobs: the pipeline is byte-identical to the
/// materialized reference path for any setting, so none of these fields
/// participate in the run cache's cell key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Packets per streamed chunk; `0` selects the materialized
    /// reference path (generate the whole run, then fan out).
    pub chunk_packets: usize,
    /// Bounded depth, in chunks, of each sniffer's splitter queue
    /// (clamped to ≥ 1). Peak pipeline memory is roughly
    /// `chunk_packets × (depth_chunks + 1) × ways` packets.
    pub depth_chunks: usize,
    /// Byte budget of the process-global content-addressed stream cache
    /// (`0` = off: every cell regenerates its own stream). Only the
    /// streaming path consults the cache.
    pub stream_cache_bytes: u64,
}

impl PipelineConfig {
    /// The streaming default: ~4k-packet chunks, four in flight per
    /// sniffer, stream sharing on with the default byte budget.
    pub fn streaming() -> PipelineConfig {
        PipelineConfig {
            chunk_packets: pcs_pktgen::DEFAULT_CHUNK_PACKETS,
            depth_chunks: 4,
            stream_cache_bytes: pcs_pktgen::DEFAULT_STREAM_CACHE_BYTES,
        }
    }

    /// The pre-pipeline reference: materialize the whole run, then fan
    /// out (no stream sharing).
    pub fn materialized() -> PipelineConfig {
        PipelineConfig {
            chunk_packets: 0,
            depth_chunks: 1,
            stream_cache_bytes: 0,
        }
    }

    /// Streaming with an explicit chunk size (`0` = materialized).
    pub fn with_chunk(chunk_packets: usize) -> PipelineConfig {
        PipelineConfig {
            chunk_packets,
            ..PipelineConfig::streaming()
        }
    }

    /// The same pipeline with an explicit stream-cache byte budget
    /// (`0` = off).
    pub fn with_stream_cache(mut self, stream_cache_bytes: u64) -> PipelineConfig {
        self.stream_cache_bytes = stream_cache_bytes;
        self
    }

    /// Whether this configuration streams chunks (vs materializing).
    pub fn is_streaming(&self) -> bool {
        self.chunk_packets > 0
    }
}

/// Parse a `--stream-cache` argument: `on` (the default byte budget),
/// `off` (`0`: no sharing), or an explicit byte budget with an optional
/// `K`/`M`/`G` suffix (e.g. `256M`).
pub fn parse_stream_cache_bytes(arg: &str) -> Result<u64, String> {
    match arg {
        "on" => return Ok(pcs_pktgen::DEFAULT_STREAM_CACHE_BYTES),
        "off" => return Ok(0),
        _ => {}
    }
    let (digits, shift) = match arg.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&arg[..arg.len() - 1], 10),
        Some(b'M') | Some(b'm') => (&arg[..arg.len() - 1], 20),
        Some(b'G') | Some(b'g') => (&arg[..arg.len() - 1], 30),
        _ => (arg, 0),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(1u64 << shift))
        .ok_or_else(|| format!("--stream-cache wants on, off or BYTES[K|M|G], got '{arg}'"))
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::streaming()
    }
}

/// How a sweep executes: worker count, streaming-pipeline shape, shared
/// counters.
///
/// Cloning shares the counters (an `Arc`), so one `ExecConfig` handed to
/// several figures accumulates their cells together.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Upper bound on concurrently running cells.
    pub jobs: usize,
    /// Generator→sniffer streaming shape for every cell.
    pub pipeline: PipelineConfig,
    /// Shared run/cache counters.
    pub stats: Arc<ExecStats>,
    /// When set, every cell simulates with an enabled
    /// [`TraceSink`](pcs_trace::TraceSink) and records its event log,
    /// metrics and drop attribution here. `None` (the default) keeps the
    /// sims on the branch-cheap off path and the results byte-identical
    /// to an untraced run.
    pub trace: Option<Arc<TraceCollector>>,
    /// When set, every cell simulates under this fault plan
    /// ([`FaultPlan::arm_machine`] per machine, plus the host-side
    /// splitter/cache perturbations). `None` (the default) keeps the sims
    /// on the branch-cheap off path and results byte-identical to today.
    pub faults: Option<Arc<FaultPlan>>,
    /// Run the invariant oracle on every cell's reports. Always on under
    /// `cfg(debug_assertions)` (the test profiles); this flag arms it in
    /// release builds (`--oracle`).
    pub oracle: bool,
    /// Arm per-stage sim-time attribution
    /// ([`pcs_oskernel::MachineSim::with_stage_times`]) on every cell, so
    /// traced cells carry a [`pcs_trace::StageTimes`] account into the
    /// collector (the run ledger renders it). Off by default: the sims
    /// stay on the branch-cheap off path.
    pub stage_times: bool,
}

impl ExecConfig {
    /// One worker: cells run strictly in input order.
    pub fn serial() -> ExecConfig {
        ExecConfig::with_jobs(1)
    }

    /// As many workers as the host offers.
    pub fn parallel() -> ExecConfig {
        ExecConfig::with_jobs(available_parallelism())
    }

    /// Exactly `jobs` workers (clamped to ≥ 1).
    pub fn with_jobs(jobs: usize) -> ExecConfig {
        ExecConfig {
            jobs: jobs.max(1),
            pipeline: PipelineConfig::default(),
            stats: Arc::new(ExecStats::default()),
            trace: None,
            faults: None,
            oracle: false,
            stage_times: false,
        }
    }

    /// The same execution with a different pipeline shape.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> ExecConfig {
        self.pipeline = pipeline;
        self
    }

    /// The same execution with every cell traced into `collector`.
    pub fn with_trace(mut self, collector: Arc<TraceCollector>) -> ExecConfig {
        self.trace = Some(collector);
        self
    }

    /// The same execution with `plan` armed on every cell.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> ExecConfig {
        self.faults = Some(plan);
        self
    }

    /// The same execution with the invariant oracle armed (it is always
    /// on in debug/test builds regardless of this flag).
    pub fn with_oracle(mut self, oracle: bool) -> ExecConfig {
        self.oracle = oracle;
        self
    }

    /// The same execution with per-stage sim-time attribution armed on
    /// every cell.
    pub fn with_stage_times(mut self, stage_times: bool) -> ExecConfig {
        self.stage_times = stage_times;
        self
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::parallel()
    }
}

/// The host's available parallelism (1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over `items` on a bounded pool of `jobs` workers, returning
/// results **in input order** regardless of completion order.
///
/// Work is handed out dynamically (an atomic cursor), so long and short
/// items mix without head-of-line blocking. With `jobs == 1` no threads
/// are spawned and `f` runs inline, in order. A panicking item propagates
/// the panic to the caller (after the scope joins its workers).
pub fn parallel_ordered<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .0
                    .take()
                    .expect("job claimed twice");
                let result = f(i, item);
                slots[i].lock().expect("job slot poisoned").1 = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .1
                .expect("job completed without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        for jobs in [1, 2, 8, 64] {
            let items: Vec<u64> = (0..100).collect();
            let out = parallel_ordered(items, jobs, |i, x| {
                // Stagger completion: make early items slow.
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                (i as u64, x * 2)
            });
            assert_eq!(out.len(), 100);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                assert_eq!(*doubled, i as u64 * 2);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_ordered(empty, 4, |_, x: u8| x).is_empty());
        assert_eq!(parallel_ordered(vec![7u8], 4, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn pipeline_presets_and_builder() {
        assert!(PipelineConfig::streaming().is_streaming());
        assert!(!PipelineConfig::materialized().is_streaming());
        assert!(!PipelineConfig::with_chunk(0).is_streaming());
        assert_eq!(PipelineConfig::with_chunk(512).chunk_packets, 512);
        let exec = ExecConfig::with_jobs(2).with_pipeline(PipelineConfig::with_chunk(512));
        assert_eq!(exec.pipeline.chunk_packets, 512);
        assert_eq!(ExecConfig::serial().pipeline, PipelineConfig::streaming());
        assert_eq!(
            PipelineConfig::streaming().stream_cache_bytes,
            pcs_pktgen::DEFAULT_STREAM_CACHE_BYTES
        );
        assert_eq!(PipelineConfig::materialized().stream_cache_bytes, 0);
        let off = PipelineConfig::streaming().with_stream_cache(0);
        assert_eq!(off.stream_cache_bytes, 0);
        assert!(off.is_streaming(), "cache knob is independent of chunking");
    }

    #[test]
    fn stream_cache_argument_parses() {
        assert_eq!(
            parse_stream_cache_bytes("on"),
            Ok(pcs_pktgen::DEFAULT_STREAM_CACHE_BYTES)
        );
        assert_eq!(parse_stream_cache_bytes("off"), Ok(0));
        assert_eq!(parse_stream_cache_bytes("4096"), Ok(4096));
        assert_eq!(parse_stream_cache_bytes("8K"), Ok(8 << 10));
        assert_eq!(parse_stream_cache_bytes("256M"), Ok(256 << 20));
        assert_eq!(parse_stream_cache_bytes("2g"), Ok(2 << 30));
        assert!(parse_stream_cache_bytes("").is_err());
        assert!(parse_stream_cache_bytes("K").is_err());
        assert!(parse_stream_cache_bytes("fast").is_err());
        assert!(parse_stream_cache_bytes("99999999999999999999G").is_err());
    }

    #[test]
    fn exec_config_clamps_and_counts() {
        let cfg = ExecConfig::with_jobs(0);
        assert_eq!(cfg.jobs, 1);
        cfg.stats.record_run();
        cfg.stats.record_cached();
        cfg.stats.record_cached();
        cfg.stats.record_stream_generated();
        cfg.stats.record_stream_shared();
        cfg.stats.record_stream_shared();
        cfg.stats.note_stream_resident(100);
        cfg.stats.note_stream_resident(40);
        let shared = cfg.clone();
        assert_eq!(shared.stats.cells_run(), 1);
        assert_eq!(shared.stats.cells_cached(), 2);
        assert_eq!(shared.stats.streams_generated(), 1);
        assert_eq!(shared.stats.streams_shared(), 2);
        assert_eq!(shared.stats.peak_stream_bytes(), 100, "high-water mark");
        assert!(ExecConfig::parallel().jobs >= 1);
    }
}
