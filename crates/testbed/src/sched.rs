//! Parallel execution of sweep cells (MoonGen-style worker pool).
//!
//! The evaluation is a grid of independent cells — (rate × repeat) inside
//! one sweep, whole experiments at the CLI level. The DES is
//! deterministic by construction (per-component seeded PCG streams, no
//! host-time dependence), so cells can run on any thread in any order and
//! the merged results are still bit-identical to a serial run: the pool
//! assigns cells to workers dynamically but writes every result back into
//! its input-order slot.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counters a sweep (or a whole CLI run) accumulates while executing.
#[derive(Debug, Default)]
pub struct ExecStats {
    cells_run: AtomicU64,
    cells_cached: AtomicU64,
}

impl ExecStats {
    /// Record a cell that was actually simulated.
    pub fn record_run(&self) {
        self.cells_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cell served from the [`crate::RunCache`].
    pub fn record_cached(&self) {
        self.cells_cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Cells simulated so far.
    pub fn cells_run(&self) -> u64 {
        self.cells_run.load(Ordering::Relaxed)
    }

    /// Cells answered from the cache so far.
    pub fn cells_cached(&self) -> u64 {
        self.cells_cached.load(Ordering::Relaxed)
    }
}

/// How a cell streams packets from the generator to its sniffers.
///
/// These are *execution* knobs: the pipeline is byte-identical to the
/// materialized reference path for any setting, so none of these fields
/// participate in the run cache's cell key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Packets per streamed chunk; `0` selects the materialized
    /// reference path (generate the whole run, then fan out).
    pub chunk_packets: usize,
    /// Bounded depth, in chunks, of each sniffer's splitter queue
    /// (clamped to ≥ 1). Peak pipeline memory is roughly
    /// `chunk_packets × (depth_chunks + 1) × ways` packets.
    pub depth_chunks: usize,
}

impl PipelineConfig {
    /// The streaming default: ~4k-packet chunks, four in flight per
    /// sniffer.
    pub fn streaming() -> PipelineConfig {
        PipelineConfig {
            chunk_packets: pcs_pktgen::DEFAULT_CHUNK_PACKETS,
            depth_chunks: 4,
        }
    }

    /// The pre-pipeline reference: materialize the whole run, then fan
    /// out.
    pub fn materialized() -> PipelineConfig {
        PipelineConfig {
            chunk_packets: 0,
            depth_chunks: 1,
        }
    }

    /// Streaming with an explicit chunk size (`0` = materialized).
    pub fn with_chunk(chunk_packets: usize) -> PipelineConfig {
        PipelineConfig {
            chunk_packets,
            ..PipelineConfig::streaming()
        }
    }

    /// Whether this configuration streams chunks (vs materializing).
    pub fn is_streaming(&self) -> bool {
        self.chunk_packets > 0
    }
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::streaming()
    }
}

/// How a sweep executes: worker count, streaming-pipeline shape, shared
/// counters.
///
/// Cloning shares the counters (an `Arc`), so one `ExecConfig` handed to
/// several figures accumulates their cells together.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Upper bound on concurrently running cells.
    pub jobs: usize,
    /// Generator→sniffer streaming shape for every cell.
    pub pipeline: PipelineConfig,
    /// Shared run/cache counters.
    pub stats: Arc<ExecStats>,
}

impl ExecConfig {
    /// One worker: cells run strictly in input order.
    pub fn serial() -> ExecConfig {
        ExecConfig::with_jobs(1)
    }

    /// As many workers as the host offers.
    pub fn parallel() -> ExecConfig {
        ExecConfig::with_jobs(available_parallelism())
    }

    /// Exactly `jobs` workers (clamped to ≥ 1).
    pub fn with_jobs(jobs: usize) -> ExecConfig {
        ExecConfig {
            jobs: jobs.max(1),
            pipeline: PipelineConfig::default(),
            stats: Arc::new(ExecStats::default()),
        }
    }

    /// The same execution with a different pipeline shape.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> ExecConfig {
        self.pipeline = pipeline;
        self
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::parallel()
    }
}

/// The host's available parallelism (1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over `items` on a bounded pool of `jobs` workers, returning
/// results **in input order** regardless of completion order.
///
/// Work is handed out dynamically (an atomic cursor), so long and short
/// items mix without head-of-line blocking. With `jobs == 1` no threads
/// are spawned and `f` runs inline, in order. A panicking item propagates
/// the panic to the caller (after the scope joins its workers).
pub fn parallel_ordered<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .0
                    .take()
                    .expect("job claimed twice");
                let result = f(i, item);
                slots[i].lock().expect("job slot poisoned").1 = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .1
                .expect("job completed without a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        for jobs in [1, 2, 8, 64] {
            let items: Vec<u64> = (0..100).collect();
            let out = parallel_ordered(items, jobs, |i, x| {
                // Stagger completion: make early items slow.
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                (i as u64, x * 2)
            });
            assert_eq!(out.len(), 100);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                assert_eq!(*doubled, i as u64 * 2);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_ordered(empty, 4, |_, x: u8| x).is_empty());
        assert_eq!(parallel_ordered(vec![7u8], 4, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn pipeline_presets_and_builder() {
        assert!(PipelineConfig::streaming().is_streaming());
        assert!(!PipelineConfig::materialized().is_streaming());
        assert!(!PipelineConfig::with_chunk(0).is_streaming());
        assert_eq!(PipelineConfig::with_chunk(512).chunk_packets, 512);
        let exec = ExecConfig::with_jobs(2).with_pipeline(PipelineConfig::with_chunk(512));
        assert_eq!(exec.pipeline.chunk_packets, 512);
        assert_eq!(ExecConfig::serial().pipeline, PipelineConfig::streaming());
    }

    #[test]
    fn exec_config_clamps_and_counts() {
        let cfg = ExecConfig::with_jobs(0);
        assert_eq!(cfg.jobs, 1);
        cfg.stats.record_run();
        cfg.stats.record_cached();
        cfg.stats.record_cached();
        let shared = cfg.clone();
        assert_eq!(shared.stats.cells_run(), 1);
        assert_eq!(shared.stats.cells_cached(), 2);
        assert!(ExecConfig::parallel().jobs >= 1);
    }
}
