//! The per-process run cache (memoized measurement cells).
//!
//! A *cell* is the smallest independent unit of the evaluation grid: one
//! (SUT set, workload, rate, repeat) combination. The whole simulation is
//! deterministic — per-component seeded PCG streams, no host-time
//! dependence — so a cell's distilled numbers are a pure function of its
//! configuration. Several figures re-run the same baseline (e.g. the
//! increased-buffer sweep is recomputed inside the filter, header-to-disk
//! and default-buffer comparisons); the cache makes each such cell cost
//! one computation per process.
//!
//! Keys are 128-bit FNV-1a fingerprints of the full cell configuration
//! (machine spec, kernel/app sim config, generator config, rate, repeat),
//! taken over the `Debug` rendering of those types — stable within a
//! process, which is all the cache's lifetime spans.

use crate::cycle::{CycleConfig, Sut};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Distilled result of one SUT in one cell (one repeat at one rate).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSut {
    /// Mean capture rate over the SUT's applications (0..1).
    pub capture: f64,
    /// Worst single application's capture rate.
    pub worst: f64,
    /// Best single application's capture rate.
    pub best: f64,
    /// Trimmed CPU busy percentage.
    pub cpu_busy: f64,
}

/// Distilled result of one measurement cell: the achieved rate plus one
/// entry per SUT, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Achieved frame data rate in Mbit/s for this repeat's stream.
    pub achieved_mbps: f64,
    /// Per-SUT numbers, in input order.
    pub suts: Vec<CellSut>,
}

/// 128-bit cell key: two independent FNV-1a hashes of the fingerprint.
pub type CellKey = (u64, u64);

fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint a cell configuration into a [`CellKey`].
///
/// `repeat` participates because the generator derives a distinct seed
/// per repeat; `cfg.repeats` deliberately does not — the number of
/// repeats changes which cells exist, not what any one cell computes.
pub fn cell_key(suts: &[Sut], cfg: &CycleConfig, rate: Option<f64>, repeat: u32) -> CellKey {
    let mut fp = String::new();
    for sut in suts {
        fp.push_str(&format!("{:?}|{:?};", sut.spec, sut.sim));
    }
    fp.push_str(&format!(
        "count={};size={:?};mean={};burst={};seed={};tx={:?};rate={:?};rep={}",
        cfg.count,
        cfg.size,
        cfg.mean_frame.to_bits(),
        cfg.burst,
        cfg.seed,
        cfg.tx,
        rate.map(f64::to_bits),
        repeat,
    ));
    (
        fnv1a(fp.as_bytes(), 0xcbf2_9ce4_8422_2325),
        fnv1a(fp.as_bytes(), 0x6c62_272e_07bb_0142),
    )
}

/// A process-wide memo table of computed cells.
#[derive(Default)]
pub struct RunCache {
    map: Mutex<HashMap<CellKey, CellResult>>,
}

impl RunCache {
    /// A fresh, empty cache.
    pub fn new() -> RunCache {
        RunCache::default()
    }

    /// The process-global cache every sweep consults.
    pub fn global() -> &'static RunCache {
        static GLOBAL: OnceLock<RunCache> = OnceLock::new();
        GLOBAL.get_or_init(RunCache::new)
    }

    /// Look up a cell.
    pub fn get(&self, key: &CellKey) -> Option<CellResult> {
        self.map
            .lock()
            .expect("run cache poisoned")
            .get(key)
            .cloned()
    }

    /// Store a cell (last write wins; identical by determinism).
    pub fn insert(&self, key: CellKey, value: CellResult) {
        self.map
            .lock()
            .expect("run cache poisoned")
            .insert(key, value);
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.map.lock().expect("run cache poisoned").len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached cell (a "cold" cache for determinism tests and
    /// benchmarks).
    pub fn clear(&self) {
        self.map.lock().expect("run cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_hw::MachineSpec;
    use pcs_oskernel::SimConfig;

    fn suts() -> Vec<Sut> {
        vec![Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig::default(),
        }]
    }

    #[test]
    fn keys_separate_rate_repeat_and_seed() {
        let cfg = CycleConfig::fixed(1_000, 512, 42);
        let base = cell_key(&suts(), &cfg, Some(100.0), 0);
        assert_eq!(base, cell_key(&suts(), &cfg, Some(100.0), 0));
        assert_ne!(base, cell_key(&suts(), &cfg, Some(200.0), 0));
        assert_ne!(base, cell_key(&suts(), &cfg, None, 0));
        assert_ne!(base, cell_key(&suts(), &cfg, Some(100.0), 1));
        let mut reseeded = CycleConfig::fixed(1_000, 512, 43);
        reseeded.repeats = cfg.repeats;
        assert_ne!(base, cell_key(&suts(), &reseeded, Some(100.0), 0));
    }

    #[test]
    fn repeats_count_does_not_change_cell_identity() {
        let mut a = CycleConfig::fixed(1_000, 512, 42);
        let mut b = CycleConfig::fixed(1_000, 512, 42);
        a.repeats = 3;
        b.repeats = 7;
        assert_eq!(
            cell_key(&suts(), &a, Some(100.0), 0),
            cell_key(&suts(), &b, Some(100.0), 0)
        );
    }

    #[test]
    fn cache_round_trip_and_clear() {
        let cache = RunCache::new();
        assert!(cache.is_empty());
        let key = (1, 2);
        assert!(cache.get(&key).is_none());
        let value = CellResult {
            achieved_mbps: 123.0,
            suts: vec![CellSut {
                capture: 1.0,
                worst: 0.9,
                best: 1.0,
                cpu_busy: 50.0,
            }],
        };
        cache.insert(key, value.clone());
        assert_eq!(cache.get(&key), Some(value));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
