//! The per-process run cache (memoized measurement cells).
//!
//! A *cell* is the smallest independent unit of the evaluation grid: one
//! (SUT set, workload, rate, repeat) combination. The whole simulation is
//! deterministic — per-component seeded PCG streams, no host-time
//! dependence — so a cell's distilled numbers are a pure function of its
//! configuration. Several figures re-run the same baseline (e.g. the
//! increased-buffer sweep is recomputed inside the filter, header-to-disk
//! and default-buffer comparisons); the cache makes each such cell cost
//! one computation per process.
//!
//! Keys are 128-bit FNV-1a fingerprints of the full cell configuration
//! (machine spec, kernel/app sim config, generator config, rate, repeat),
//! written field by field through [`pcs_des::Fingerprintable`] — every
//! identity-relevant field reaches the digest with an unambiguous
//! encoding, and incidental changes (a `Debug` format tweak, a new
//! execution-only knob) cannot silently change or collide keys.
//! Execution knobs — worker count, pipeline chunk size and depth — are
//! deliberately *not* part of the key: they never change a cell's
//! results, only how they are computed.

use crate::cycle::{CycleConfig, Sut};
use pcs_des::{Fingerprint, Fingerprintable};
use pcs_faultsim::FaultPlan;
use pcs_pktgen::StreamKey;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Distilled result of one SUT in one cell (one repeat at one rate).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSut {
    /// Mean capture rate over the SUT's applications (0..1).
    pub capture: f64,
    /// Worst single application's capture rate.
    pub worst: f64,
    /// Best single application's capture rate.
    pub best: f64,
    /// Trimmed CPU busy percentage.
    pub cpu_busy: f64,
}

/// Distilled result of one measurement cell: the achieved rate plus one
/// entry per SUT, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Achieved frame data rate in Mbit/s for this repeat's stream.
    pub achieved_mbps: f64,
    /// Per-SUT numbers, in input order.
    pub suts: Vec<CellSut>,
}

/// 128-bit cell key: two independent FNV-1a streams over the explicit
/// field-by-field fingerprint.
pub type CellKey = (u64, u64);

/// A [`CellKey`] as one 128-bit value — the form trace exports use to
/// identify cells.
pub fn wide_key(key: CellKey) -> u128 {
    ((key.0 as u128) << 64) | key.1 as u128
}

impl Fingerprintable for Sut {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        self.spec.fingerprint(fp);
        self.sim.fingerprint(fp);
    }
}

/// Fingerprint a cell configuration into a [`CellKey`].
///
/// `repeat` participates because the generator derives a distinct seed
/// per repeat; `cfg.repeats` deliberately does not — the number of
/// repeats changes which cells exist, not what any one cell computes.
/// Pipeline shape (chunk size, queue depth) and worker count never
/// participate: the streamed and materialized paths compute identical
/// results, so a cell cached by one answers for all.
pub fn cell_key(suts: &[Sut], cfg: &CycleConfig, rate: Option<f64>, repeat: u32) -> CellKey {
    cell_key_faulted(suts, cfg, rate, repeat, None)
}

/// [`cell_key`] with the armed fault plan folded in. An armed plan
/// deterministically changes a cell's results, so it must key the cache;
/// `None` writes nothing extra, keeping unfaulted keys byte-identical to
/// what they were before fault injection existed.
pub fn cell_key_faulted(
    suts: &[Sut],
    cfg: &CycleConfig,
    rate: Option<f64>,
    repeat: u32,
    faults: Option<&FaultPlan>,
) -> CellKey {
    let mut fp = Fingerprint::new();
    fp.seq(suts);
    fp.u64(cfg.count);
    cfg.size.fingerprint(&mut fp);
    fp.f64(cfg.mean_frame);
    fp.u32(cfg.burst);
    fp.u64(cfg.seed);
    cfg.tx.fingerprint(&mut fp);
    fp.option(&rate);
    fp.u32(repeat);
    if let Some(plan) = faults {
        plan.fingerprint(&mut fp);
    }
    fp.finish()
}

/// Fingerprint everything that determines a cell's *packet stream* —
/// generator config, pacing rate, the per-repeat derived seed — into a
/// [`StreamKey`] for the content-addressed
/// [`StreamCache`](pcs_pktgen::StreamCache).
///
/// Unlike [`cell_key`] the SUT set does not participate: N cells that
/// differ only in their sniffers consume the *same* stream, which is
/// exactly the sharing the cache exists for. The seed enters in its
/// *derived* per-repeat form, so two (seed, repeat) pairs that drive the
/// generator identically address the same stream. Chunk size is an
/// execution knob and is excluded: subscribers take the producer's chunk
/// boundaries, and results are chunk-size invariant.
pub fn stream_key(cfg: &CycleConfig, rate: Option<f64>, repeat: u32) -> StreamKey {
    let mut fp = Fingerprint::new();
    fp.u64(cfg.count);
    cfg.size.fingerprint(&mut fp);
    fp.f64(cfg.mean_frame);
    fp.u32(cfg.burst);
    fp.u64(cfg.seed.wrapping_add(repeat as u64 * 7919));
    cfg.tx.fingerprint(&mut fp);
    fp.option(&rate);
    fp.finish()
}

/// A process-wide memo table of computed cells.
#[derive(Default)]
pub struct RunCache {
    map: Mutex<HashMap<CellKey, CellResult>>,
}

impl RunCache {
    /// A fresh, empty cache.
    pub fn new() -> RunCache {
        RunCache::default()
    }

    /// The process-global cache every sweep consults.
    pub fn global() -> &'static RunCache {
        static GLOBAL: OnceLock<RunCache> = OnceLock::new();
        GLOBAL.get_or_init(RunCache::new)
    }

    /// Look up a cell.
    pub fn get(&self, key: &CellKey) -> Option<CellResult> {
        self.map
            .lock()
            .expect("run cache poisoned")
            .get(key)
            .cloned()
    }

    /// Store a cell (last write wins; identical by determinism).
    pub fn insert(&self, key: CellKey, value: CellResult) {
        self.map
            .lock()
            .expect("run cache poisoned")
            .insert(key, value);
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.map.lock().expect("run cache poisoned").len()
    }

    /// Whether the cache holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached cell (a "cold" cache for determinism tests and
    /// benchmarks).
    pub fn clear(&self) {
        self.map.lock().expect("run cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_hw::MachineSpec;
    use pcs_oskernel::SimConfig;

    fn suts() -> Vec<Sut> {
        vec![Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig::default(),
        }]
    }

    #[test]
    fn keys_separate_rate_repeat_and_seed() {
        let cfg = CycleConfig::fixed(1_000, 512, 42);
        let base = cell_key(&suts(), &cfg, Some(100.0), 0);
        assert_eq!(base, cell_key(&suts(), &cfg, Some(100.0), 0));
        assert_ne!(base, cell_key(&suts(), &cfg, Some(200.0), 0));
        assert_ne!(base, cell_key(&suts(), &cfg, None, 0));
        assert_ne!(base, cell_key(&suts(), &cfg, Some(100.0), 1));
        let mut reseeded = CycleConfig::fixed(1_000, 512, 43);
        reseeded.repeats = cfg.repeats;
        assert_ne!(base, cell_key(&suts(), &reseeded, Some(100.0), 0));
    }

    #[test]
    fn keys_cover_the_sut_configuration() {
        let cfg = CycleConfig::fixed(1_000, 512, 42);
        let base = cell_key(&suts(), &cfg, Some(100.0), 0);
        let mut buffers = suts();
        buffers[0].sim.buffers = pcs_oskernel::BufferConfig::default_buffers();
        assert_ne!(base, cell_key(&buffers, &cfg, Some(100.0), 0));
        let mut machine = suts();
        machine[0].spec = MachineSpec::moorhen();
        assert_ne!(base, cell_key(&machine, &cfg, Some(100.0), 0));
        let two = vec![suts()[0].clone(), suts()[0].clone()];
        assert_ne!(base, cell_key(&two, &cfg, Some(100.0), 0));
    }

    #[test]
    fn stream_keys_ignore_suts_and_share_derived_seeds() {
        let cfg = CycleConfig::fixed(1_000, 512, 42);
        let base = stream_key(&cfg, Some(100.0), 0);
        assert_eq!(base, stream_key(&cfg, Some(100.0), 0));
        assert_ne!(base, stream_key(&cfg, Some(200.0), 0));
        assert_ne!(base, stream_key(&cfg, None, 0));
        assert_ne!(base, stream_key(&cfg, Some(100.0), 1));
        let mut resized = CycleConfig::fixed(1_000, 256, 42);
        resized.mean_frame = cfg.mean_frame;
        assert_ne!(base, stream_key(&resized, Some(100.0), 0));
        // The per-repeat seed enters in derived form: two (seed, repeat)
        // pairs that drive the generator identically share a stream.
        let shifted = CycleConfig::fixed(1_000, 512, 42 + 7919);
        assert_eq!(
            stream_key(&cfg, Some(100.0), 1),
            stream_key(&shifted, Some(100.0), 0)
        );
    }

    #[test]
    fn fault_plans_key_the_cache() {
        let cfg = CycleConfig::fixed(1_000, 512, 42);
        let base = cell_key(&suts(), &cfg, Some(100.0), 0);
        let none = cell_key_faulted(&suts(), &cfg, Some(100.0), 0, None);
        assert_eq!(base, none, "no plan armed must not change the key");
        let plan = FaultPlan::parse("ringstall:7").unwrap().unwrap();
        let armed = cell_key_faulted(&suts(), &cfg, Some(100.0), 0, Some(&plan));
        assert_ne!(base, armed);
        let reseeded = FaultPlan::parse("ringstall:8").unwrap().unwrap();
        assert_ne!(
            armed,
            cell_key_faulted(&suts(), &cfg, Some(100.0), 0, Some(&reseeded))
        );
    }

    #[test]
    fn repeats_count_does_not_change_cell_identity() {
        let mut a = CycleConfig::fixed(1_000, 512, 42);
        let mut b = CycleConfig::fixed(1_000, 512, 42);
        a.repeats = 3;
        b.repeats = 7;
        assert_eq!(
            cell_key(&suts(), &a, Some(100.0), 0),
            cell_key(&suts(), &b, Some(100.0), 0)
        );
    }

    #[test]
    fn cache_round_trip_and_clear() {
        let cache = RunCache::new();
        assert!(cache.is_empty());
        let key = (1, 2);
        assert!(cache.get(&key).is_none());
        let value = CellResult {
            achieved_mbps: 123.0,
            suts: vec![CellSut {
                capture: 1.0,
                worst: 0.9,
                best: 1.0,
                cpu_busy: 50.0,
            }],
        };
        cache.insert(key, value.clone());
        assert_eq!(cache.get(&key), Some(value));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
