//! # pcs-testbed — the measurement methodology
//!
//! Chapter 3 of the thesis as a library: the passive [`splitter`] that
//! feeds every sniffer the same packets, the monitoring [`switch`] whose
//! SNMP counters verify the generated packet count, and the measurement
//! [`cycle`] — start capture + profiling, generate, read counters, stop,
//! repeat — with the §6.2.2 result calculation.
//!
//! The cycle executes on the parallel sweep engine ([`sched`]): every
//! (rate × repeat) cell of a sweep is an independent deterministic job,
//! scheduled across a bounded worker pool and merged back in input
//! order, with cells memoized per process in the [`cache`].
//!
//! Inside a cell, packets *stream*: the generator produces bounded
//! chunks that the [`splitter`] broadcasts to every sniffer's queue
//! while the machine simulations consume concurrently. The pipeline
//! shape ([`PipelineConfig`]) is an execution knob — results are
//! byte-identical at any chunk size, queue depth or job count, and
//! identical to the materialized reference path (`--chunk 0`).
//!
//! Across cells, generation itself is shared: streams are
//! content-addressed ([`stream_key`]) in the process-global
//! [`StreamCache`](pcs_pktgen::StreamCache), so N SUT sets measured at
//! the same (workload, rate, repeat) grid generate each packet stream
//! exactly once and subscribe to its chunks thereafter (`--stream-cache`;
//! byte-budgeted, LRU-bounded, `off` for per-cell regeneration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cycle;
pub mod sched;
pub mod splitter;
pub mod switch;

pub use cache::{cell_key, stream_key, wide_key, CellKey, CellResult, CellSut, RunCache};
pub use cycle::{
    aggregate_point, cell_label, run_point, run_sniffers, run_sweep, run_sweep_exec, standard_suts,
    CycleConfig, PointResult, Sut, SutPoint,
};
pub use sched::{
    available_parallelism, parallel_ordered, parse_stream_cache_bytes, ExecConfig, ExecStats,
    PipelineConfig,
};
pub use splitter::{OpticalSplitter, SplitterOutput, SplitterSender};
pub use switch::{IfCounters, MonitorSwitch};
