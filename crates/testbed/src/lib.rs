//! # pcs-testbed — the measurement methodology
//!
//! Chapter 3 of the thesis as a library: the passive [`splitter`] that
//! feeds every sniffer the same packets, the monitoring [`switch`] whose
//! SNMP counters verify the generated packet count, and the measurement
//! [`cycle`] — start capture + profiling, generate, read counters, stop,
//! repeat — with the §6.2.2 result calculation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod splitter;
pub mod switch;

pub use cycle::{
    run_point, run_sniffers, run_sweep, standard_suts, CycleConfig, PointResult, Sut, SutPoint,
};
pub use splitter::OpticalSplitter;
pub use switch::{IfCounters, MonitorSwitch};
