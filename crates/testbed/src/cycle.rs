//! The measurement cycle (thesis §3.4, Fig. 3.2) and result calculation
//! (§6.2.2).
//!
//! For every data rate the control host: starts the capturing and
//! profiling applications on all four sniffers, reads the switch's SNMP
//! counters, runs the generation, reads the counters again, stops the
//! applications — and repeats the whole cycle several times "to avoid
//! outliers or unwanted influences" (the thesis uses seven repetitions;
//! results aggregate by median).
//!
//! All sniffers observe the *same* packet stream: the simulation shares
//! one generated stream (the splitter's job) and runs the four machine
//! simulations concurrently on host threads.

use crate::switch::MonitorSwitch;
use pcs_des::stats::median;
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, RunReport, SimConfig};
use pcs_pktgen::{Generator, PktgenConfig, SizeSource, TimedPacket, TxModel};
use std::sync::Arc;

/// One system under test: hardware plus kernel/application configuration.
#[derive(Clone)]
pub struct Sut {
    /// The machine.
    pub spec: MachineSpec,
    /// Buffering and applications.
    pub sim: SimConfig,
}

/// Sweep-wide settings.
#[derive(Clone)]
pub struct CycleConfig {
    /// Packets per generation run (the thesis uses 10⁶).
    pub count: u64,
    /// Measurement repetitions per point (the thesis uses 7).
    pub repeats: u32,
    /// Packet size source for the generator.
    pub size: SizeSource,
    /// Mean frame length of that source (for rate pacing).
    pub mean_frame: f64,
    /// Mean packet-train length (burstiness).
    pub burst: u32,
    /// Base RNG seed; repeats derive their own.
    pub seed: u64,
    /// Generating NIC model.
    pub tx: TxModel,
}

impl CycleConfig {
    /// The thesis' workload: the MWN packet-size distribution at 10⁶
    /// packets per run. `repeats` is lowered to 3 by default (the runs
    /// are deterministic up to the seed; see DESIGN.md).
    pub fn mwn(count: u64, seed: u64) -> CycleConfig {
        let counts = pcs_pktgen::mwn_counts(1_000_000);
        let dist = pcs_pktgen::TwoStageDist::from_counts(
            counts.iter().map(|(&s, &c)| (s, c)),
            &pcs_pktgen::DistConfig::default(),
        )
        .expect("mwn distribution is non-empty");
        let mean_frame = pcs_pktgen::mwn_mean(&counts) + 14.0;
        CycleConfig {
            count,
            repeats: 3,
            size: SizeSource::Distribution(dist),
            mean_frame,
            burst: 64,
            seed,
            tx: TxModel::syskonnect(),
        }
    }

    /// Fixed-size frames (stock pktgen behaviour).
    pub fn fixed(count: u64, frame_len: u32, seed: u64) -> CycleConfig {
        CycleConfig {
            count,
            repeats: 3,
            size: SizeSource::Fixed(frame_len),
            mean_frame: frame_len as f64,
            burst: 1,
            seed,
            tx: TxModel::syskonnect(),
        }
    }
}

/// Result for one SUT at one measurement point (medians over repeats).
#[derive(Debug, Clone)]
pub struct SutPoint {
    /// Machine label.
    pub label: String,
    /// Mean capture rate over the SUT's applications (0..1).
    pub capture: f64,
    /// Worst single application's capture rate.
    pub capture_worst: f64,
    /// Best single application's capture rate.
    pub capture_best: f64,
    /// Trimmed average CPU busy percentage (cpusage → trimusage).
    pub cpu_busy: f64,
}

/// Result of one measurement point (one target rate).
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Requested rate in Mbit/s (`None` = full speed / no gap).
    pub target_mbps: Option<f64>,
    /// Median achieved frame data rate in Mbit/s (verified against the
    /// switch counters).
    pub achieved_mbps: f64,
    /// Packets generated per run.
    pub generated: u64,
    /// One entry per SUT, in input order.
    pub suts: Vec<SutPoint>,
}

/// Generate one run's packet stream and verify it against the switch
/// counters. Returns the stream and the achieved rate.
fn generate_run(
    cfg: &CycleConfig,
    rate: Option<f64>,
    repeat: u32,
) -> (Arc<Vec<TimedPacket>>, f64) {
    let gen_cfg = PktgenConfig {
        count: cfg.count,
        size: cfg.size.clone(),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(gen_cfg, cfg.tx, cfg.seed.wrapping_add(repeat as u64 * 7919));
    match rate {
        Some(r) => g.set_target_rate(r, cfg.mean_frame),
        None => g.set_full_speed(),
    }
    g.set_burstiness(cfg.burst);

    let mut switch = MonitorSwitch::thesis_setup();
    let before = switch.snmp_read(8);
    let mut packets = Vec::with_capacity(cfg.count as usize);
    let mut bytes = 0u64;
    for tp in g {
        switch.forward(&tp.packet);
        bytes += tp.packet.frame_len as u64;
        packets.push(tp);
    }
    let after = switch.snmp_read(8);
    let delta = MonitorSwitch::delta(&before, &after);
    assert_eq!(
        delta.out_pkts, cfg.count,
        "switch must confirm every generated packet went out"
    );
    let elapsed = packets
        .last()
        .map(|tp| tp.time.as_secs_f64())
        .unwrap_or(0.0);
    let achieved = if elapsed > 0.0 {
        bytes as f64 * 8.0 / elapsed / 1e6
    } else {
        0.0
    };
    (Arc::new(packets), achieved)
}

/// Run one measurement point over all SUTs with repeats; aggregate by
/// median.
///
/// ```
/// use pcs_testbed::{run_point, standard_suts, CycleConfig};
/// use pcs_oskernel::SimConfig;
///
/// let suts = standard_suts(SimConfig::default());
/// let mut cfg = CycleConfig::mwn(5_000, 42);
/// cfg.repeats = 1;
/// let point = run_point(&suts, &cfg, Some(200.0));
/// assert_eq!(point.suts.len(), 4);
/// assert!(point.suts.iter().all(|s| s.capture > 0.99));
/// ```
pub fn run_point(suts: &[Sut], cfg: &CycleConfig, rate: Option<f64>) -> PointResult {
    let mut achieved_all = Vec::new();
    // capture[s][r], worst, best, cpu
    let nsuts = suts.len();
    let mut capture = vec![Vec::new(); nsuts];
    let mut worst = vec![Vec::new(); nsuts];
    let mut best = vec![Vec::new(); nsuts];
    let mut cpu = vec![Vec::new(); nsuts];

    for repeat in 0..cfg.repeats {
        let (stream, achieved) = generate_run(cfg, rate, repeat);
        achieved_all.push(achieved);
        let reports = run_sniffers(suts, &stream);
        for (s, report) in reports.iter().enumerate() {
            capture[s].push(report.mean_capture_rate());
            let (w, b) = report.worst_best();
            worst[s].push(w);
            best[s].push(b);
            // Short runs may not span two 0.5 s cpusage samples; fall
            // back to the load-window accounting then.
            let busy = if report.samples.len() >= 3 {
                pcs_profiling::trimmed_busy_percent(&report.samples, 95.0)
            } else {
                report.load_cpu_usage() * 100.0
            };
            cpu[s].push(busy);
        }
    }

    PointResult {
        target_mbps: rate,
        achieved_mbps: median(&achieved_all),
        generated: cfg.count,
        suts: suts
            .iter()
            .enumerate()
            .map(|(s, sut)| SutPoint {
                label: sut.spec.label(),
                capture: median(&capture[s]),
                capture_worst: median(&worst[s]),
                capture_best: median(&best[s]),
                cpu_busy: median(&cpu[s]),
            })
            .collect(),
    }
}

/// Run all sniffers over one shared stream, concurrently.
pub fn run_sniffers(suts: &[Sut], stream: &Arc<Vec<TimedPacket>>) -> Vec<RunReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = suts
            .iter()
            .map(|sut| {
                let stream = Arc::clone(stream);
                let spec = sut.spec;
                let sim = sut.sim.clone();
                scope.spawn(move || {
                    let source = stream.iter().map(|tp| (tp.time, tp.packet.clone()));
                    MachineSim::new(spec, sim).run(source)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sniffer thread panicked"))
            .collect()
    })
}

/// Sweep a list of rates (the thesis' 50–950 Mbit/s x-axis); `None`
/// entries mean "no inter-packet gap" (full speed).
pub fn run_sweep(suts: &[Sut], cfg: &CycleConfig, rates: &[Option<f64>]) -> Vec<PointResult> {
    rates.iter().map(|r| run_point(suts, cfg, *r)).collect()
}

/// The standard four-sniffer setup with a common simulation config.
pub fn standard_suts(sim: SimConfig) -> Vec<Sut> {
    MachineSpec::all_sniffers()
        .into_iter()
        .map(|spec| Sut {
            spec,
            sim: sim.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_oskernel::BufferConfig;

    fn quick_cfg() -> CycleConfig {
        let mut c = CycleConfig::mwn(8_000, 42);
        c.repeats = 2;
        c
    }

    #[test]
    fn point_runs_all_four_sniffers() {
        let suts = standard_suts(SimConfig::default());
        // Long enough (~1 s of virtual time) for cpusage to get samples.
        let mut cfg = CycleConfig::mwn(30_000, 42);
        cfg.repeats = 2;
        let p = run_point(&suts, &cfg, Some(150.0));
        assert_eq!(p.suts.len(), 4);
        assert!((p.achieved_mbps - 150.0).abs() < 20.0, "{}", p.achieved_mbps);
        for s in &p.suts {
            assert!(
                (s.capture - 1.0).abs() < 1e-9,
                "{} should capture all at 150 Mbit/s: {}",
                s.label,
                s.capture
            );
            assert!(s.cpu_busy > 0.0 && s.cpu_busy <= 100.0);
        }
    }

    #[test]
    fn full_speed_point() {
        let suts = vec![Sut {
            spec: MachineSpec::moorhen(),
            sim: SimConfig::default(),
        }];
        let p = run_point(&suts, &quick_cfg(), None);
        assert!(p.achieved_mbps > 700.0, "{}", p.achieved_mbps);
        assert!(p.target_mbps.is_none());
    }

    #[test]
    fn sweep_produces_ordered_points() {
        let suts = vec![Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig {
                buffers: BufferConfig::increased(),
                ..SimConfig::default()
            },
        }];
        let pts = run_sweep(&suts, &quick_cfg(), &[Some(100.0), Some(300.0)]);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].achieved_mbps < pts[1].achieved_mbps);
    }

    #[test]
    fn repeats_are_aggregated() {
        let suts = vec![Sut {
            spec: MachineSpec::moorhen(),
            sim: SimConfig::default(),
        }];
        let mut cfg = quick_cfg();
        cfg.repeats = 3;
        let p = run_point(&suts, &cfg, Some(200.0));
        assert_eq!(p.generated, 8_000);
        assert!((p.suts[0].capture - 1.0).abs() < 1e-9);
    }
}
