//! The measurement cycle (thesis §3.4, Fig. 3.2) and result calculation
//! (§6.2.2).
//!
//! For every data rate the control host: starts the capturing and
//! profiling applications on all four sniffers, reads the switch's SNMP
//! counters, runs the generation, reads the counters again, stops the
//! applications — and repeats the whole cycle several times "to avoid
//! outliers or unwanted influences" (the thesis uses seven repetitions;
//! results aggregate by median).
//!
//! All sniffers observe the *same* packet stream: the simulation shares
//! one generated stream (the splitter's job) and runs the four machine
//! simulations concurrently on host threads.
//!
//! By default a cell *streams*: the generator thread produces bounded
//! chunks, forwards them through the monitoring switch, and broadcasts
//! each chunk over the splitter's bounded queues while the per-SUT
//! machine simulations consume concurrently ([`PipelineConfig`]). The
//! pre-pipeline materialized path (generate the whole run into a `Vec`,
//! then fan out) remains available as the reference
//! (`PipelineConfig::materialized()`, CLI `--chunk 0`); both paths
//! produce byte-identical results — the streaming pipeline only bounds
//! memory and overlaps generation with consumption.
//!
//! Streaming cells additionally share generation through the
//! process-global, content-addressed
//! [`StreamCache`](pcs_pktgen::StreamCache): cells that differ only in
//! their SUT set address the same (workload, rate, repeat) stream, so
//! the first generates and publishes it while the rest subscribe to the
//! published chunks (CLI `--stream-cache`, byte-budgeted; `off`
//! regenerates per cell, byte-identically).

use crate::cache::{cell_key_faulted, stream_key, wide_key, CellResult, CellSut, RunCache};
use crate::sched::{parallel_ordered, ExecConfig};
use crate::splitter::OpticalSplitter;
use crate::switch::MonitorSwitch;
use pcs_des::stats::median;
use pcs_des::{BatchProbe, PoolProbe, SimTime};
use pcs_faultsim::{FaultPlan, Oracle};
use pcs_hw::MachineSpec;
use pcs_oskernel::{MachineSim, RunReport, SimConfig};
use pcs_pktgen::{
    ChunkedGenerator, Generator, PacketSource, PktgenConfig, PublishingSource, SizeSource,
    StreamCache, StreamRole, TimedPacket, TxModel,
};
use pcs_trace::{SutTrace, TraceSink, TraceSpec};
use std::sync::Arc;
use std::time::Instant;

/// One system under test: hardware plus kernel/application configuration.
#[derive(Clone)]
pub struct Sut {
    /// The machine.
    pub spec: MachineSpec,
    /// Buffering and applications.
    pub sim: SimConfig,
}

/// Sweep-wide settings.
#[derive(Clone)]
pub struct CycleConfig {
    /// Packets per generation run (the thesis uses 10⁶).
    pub count: u64,
    /// Measurement repetitions per point (the thesis uses 7).
    pub repeats: u32,
    /// Packet size source for the generator.
    pub size: SizeSource,
    /// Mean frame length of that source (for rate pacing).
    pub mean_frame: f64,
    /// Mean packet-train length (burstiness).
    pub burst: u32,
    /// Base RNG seed; repeats derive their own.
    pub seed: u64,
    /// Generating NIC model.
    pub tx: TxModel,
}

impl CycleConfig {
    /// The thesis' workload: the MWN packet-size distribution at 10⁶
    /// packets per run. `repeats` is lowered to 3 by default (the runs
    /// are deterministic up to the seed; see DESIGN.md).
    pub fn mwn(count: u64, seed: u64) -> CycleConfig {
        let counts = pcs_pktgen::mwn_counts(1_000_000);
        let dist = pcs_pktgen::TwoStageDist::from_counts(
            counts.iter().map(|(&s, &c)| (s, c)),
            &pcs_pktgen::DistConfig::default(),
        )
        .expect("mwn distribution is non-empty");
        let mean_frame = pcs_pktgen::mwn_mean(&counts) + 14.0;
        CycleConfig {
            count,
            repeats: 3,
            size: SizeSource::Distribution(dist),
            mean_frame,
            burst: 64,
            seed,
            tx: TxModel::syskonnect(),
        }
    }

    /// Fixed-size frames (stock pktgen behaviour).
    pub fn fixed(count: u64, frame_len: u32, seed: u64) -> CycleConfig {
        CycleConfig {
            count,
            repeats: 3,
            size: SizeSource::Fixed(frame_len),
            mean_frame: frame_len as f64,
            burst: 1,
            seed,
            tx: TxModel::syskonnect(),
        }
    }
}

/// Result for one SUT at one measurement point (medians over repeats).
#[derive(Debug, Clone)]
pub struct SutPoint {
    /// Machine label.
    pub label: String,
    /// Mean capture rate over the SUT's applications (0..1).
    pub capture: f64,
    /// Worst single application's capture rate.
    pub capture_worst: f64,
    /// Best single application's capture rate.
    pub capture_best: f64,
    /// Trimmed average CPU busy percentage (cpusage → trimusage).
    pub cpu_busy: f64,
}

/// Result of one measurement point (one target rate).
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Requested rate in Mbit/s (`None` = full speed / no gap).
    pub target_mbps: Option<f64>,
    /// Median achieved frame data rate in Mbit/s (verified against the
    /// switch counters).
    pub achieved_mbps: f64,
    /// Packets generated per run.
    pub generated: u64,
    /// One entry per SUT, in input order.
    pub suts: Vec<SutPoint>,
}

/// Running totals on the generator side of a cell, accumulated as
/// packets flow (no peeking at a materialized stream).
///
/// The achieved rate is the frame bytes over the time of the last
/// transmitted packet — exactly the number the materialized path used to
/// read off `packets.last()`, but computable chunk by chunk.
struct RateAccount {
    bytes: u64,
    last: Option<SimTime>,
}

impl RateAccount {
    fn new() -> RateAccount {
        RateAccount {
            bytes: 0,
            last: None,
        }
    }

    fn note(&mut self, tp: &TimedPacket) {
        self.bytes += tp.packet.frame_len as u64;
        self.last = Some(tp.time);
    }

    /// Achieved frame data rate in Mbit/s; `0.0` for an empty run.
    fn achieved_mbps(&self) -> f64 {
        let elapsed = self.last.map(SimTime::as_secs_f64).unwrap_or(0.0);
        if elapsed > 0.0 {
            self.bytes as f64 * 8.0 / elapsed / 1e6
        } else {
            0.0
        }
    }
}

/// Build one repeat's paced generator (per-repeat seed derivation).
fn build_generator(cfg: &CycleConfig, rate: Option<f64>, repeat: u32) -> Generator {
    let gen_cfg = PktgenConfig {
        count: cfg.count,
        size: cfg.size.clone(),
        ..PktgenConfig::default()
    };
    let mut g = Generator::new(gen_cfg, cfg.tx, cfg.seed.wrapping_add(repeat as u64 * 7919));
    match rate {
        Some(r) => g.set_target_rate(r, cfg.mean_frame),
        None => g.set_full_speed(),
    }
    g.set_burstiness(cfg.burst);
    g
}

/// Generate one run's packet stream and verify it against the switch
/// counters. Returns the stream and the achieved rate. (The materialized
/// reference path; the streaming path never builds this `Vec`.)
fn generate_run(cfg: &CycleConfig, rate: Option<f64>, repeat: u32) -> (Arc<Vec<TimedPacket>>, f64) {
    let g = build_generator(cfg, rate, repeat);
    let mut switch = MonitorSwitch::thesis_setup();
    let before = switch.snmp_read(8);
    let mut packets = Vec::with_capacity(cfg.count as usize);
    let mut account = RateAccount::new();
    for tp in g {
        switch.forward(&tp.packet);
        account.note(&tp);
        packets.push(tp);
    }
    let after = switch.snmp_read(8);
    let delta = MonitorSwitch::delta(&before, &after);
    assert_eq!(
        delta.out_pkts, cfg.count,
        "switch must confirm every generated packet went out"
    );
    (Arc::new(packets), account.achieved_mbps())
}

/// Distill the per-SUT reports plus the achieved rate into a cell result.
fn distill(achieved_mbps: f64, reports: &[RunReport]) -> CellResult {
    CellResult {
        achieved_mbps,
        suts: reports
            .iter()
            .map(|report| {
                let (worst, best) = report.worst_best();
                // Short runs may not span two 0.5 s cpusage samples;
                // fall back to the load-window accounting then.
                let cpu_busy = if report.samples.len() >= 3 {
                    pcs_profiling::trimmed_busy_percent(&report.samples, 95.0)
                } else {
                    report.load_cpu_usage() * 100.0
                };
                CellSut {
                    capture: report.mean_capture_rate(),
                    worst,
                    best,
                    cpu_busy,
                }
            })
            .collect(),
    }
}

/// Human-readable label of one cell — the (rate, repeat) coordinate a
/// trace export names the cell by.
pub fn cell_label(rate: Option<f64>, repeat: u32) -> String {
    match rate {
        Some(r) => format!("rate={r:?} rep={repeat}"),
        None => format!("rate=full rep={repeat}"),
    }
}

/// Run one cell — one repeat of one rate point over all SUTs — and
/// distill the numbers every aggregation needs.
///
/// When `exec.trace` is set, every SUT simulates with an enabled sink
/// and the cell's per-SUT event logs, metrics and drop attributions are
/// recorded in the collector (first write wins; duplicates are
/// identical by determinism). Tracing never changes the distilled
/// numbers.
fn run_cell(
    suts: &[Sut],
    cfg: &CycleConfig,
    rate: Option<f64>,
    repeat: u32,
    exec: &ExecConfig,
) -> CellResult {
    let spec = exec.trace.as_ref().map(|collector| collector.spec());
    let (achieved, mut reports) = if exec.pipeline.is_streaming() && !suts.is_empty() {
        run_cell_streaming(suts, cfg, rate, repeat, exec, spec)
    } else {
        let (stream, achieved) = generate_run(cfg, rate, repeat);
        (
            achieved,
            run_sniffers_with(
                suts,
                &stream,
                spec,
                exec.faults.as_deref(),
                Some(exec.stats.sim_pools()),
                Some(exec.stats.sim_batches()),
                exec.stage_times,
            ),
        )
    };
    // The invariant oracle: always armed in debug/test builds, opt-in
    // (`--oracle`) in release. A violation is a simulation bug, never a
    // measurement outcome, so it panics with the cell coordinate.
    if exec.oracle || cfg!(debug_assertions) {
        let label = cell_label(rate, repeat);
        let link_mbps = cfg.tx.link_bps as f64 / 1e6;
        if let Err(violation) = Oracle::check_rate(&label, achieved, link_mbps) {
            panic!("{violation}");
        }
        for (sut, report) in suts.iter().zip(&reports) {
            if let Err(violation) = Oracle::check_report(&label, &sut.spec, report) {
                panic!("{violation}");
            }
        }
        exec.stats.record_validated();
    }
    let result = distill(achieved, &reports);
    if let Some(collector) = &exec.trace {
        let traces = suts
            .iter()
            .zip(reports.iter_mut())
            .map(|(sut, report)| SutTrace {
                label: sut.spec.label(),
                report: report.trace.take().map(|boxed| *boxed).unwrap_or_default(),
                attributions: report.attributions(),
                stage_times: report.stage_times.take(),
            })
            .collect();
        let key = wide_key(cell_key_faulted(
            suts,
            cfg,
            rate,
            repeat,
            exec.faults.as_deref(),
        ));
        collector.record_cell(cell_label(rate, repeat), key, achieved, traces);
    }
    result
}

/// The cell's chunk source: the generator, optionally teed through or
/// replaced by the content-addressed [`StreamCache`].
///
/// With a non-zero budget the first cell to need a (workload, rate,
/// repeat) stream generates and publishes it; every concurrent or later
/// cell — typically the same measurement point over a *different* SUT
/// set — subscribes to the published chunks instead of running the
/// generator again. Subscribed chunks flow through the very same switch
/// accounting and splitter broadcast as generated ones, so results are
/// byte-identical either way.
fn cell_source(
    cfg: &CycleConfig,
    rate: Option<f64>,
    repeat: u32,
    exec: &ExecConfig,
) -> Box<dyn PacketSource> {
    let pipeline = exec.pipeline;
    let stats = &exec.stats;
    // An armed cache-squeeze fault starves the stream cache's byte
    // budget — an execution perturbation (eviction churn, re-generation)
    // that must leave results byte-identical.
    let budget = exec
        .faults
        .as_deref()
        .map(|plan| plan.clamp_stream_budget(pipeline.stream_cache_bytes))
        .unwrap_or(pipeline.stream_cache_bytes);
    let generate =
        || ChunkedGenerator::new(build_generator(cfg, rate, repeat), pipeline.chunk_packets);
    if budget == 0 {
        return Box::new(generate());
    }
    let cache = StreamCache::global();
    let probe = stats.profiling().then(Instant::now);
    match cache.acquire(stream_key(cfg, rate, repeat), budget) {
        StreamRole::Produce(publisher) => {
            stats.record_stream_generated();
            Box::new(PublishingSource::new(generate(), publisher))
        }
        StreamRole::Subscribe(subscriber) => {
            if let Some(t0) = probe {
                stats.note_stream_subscribe(t0.elapsed().as_nanos() as u64);
            }
            stats.record_stream_shared();
            Box::new(subscriber)
        }
    }
}

/// The streaming pipeline: the calling thread generates chunks, accounts
/// them through the monitoring switch, and broadcasts each over the
/// splitter's bounded queues while one scoped thread per SUT consumes.
/// The bounded queues cap pipeline memory at roughly
/// `chunk_packets × (depth_chunks + 1)` packets per SUT and let the
/// slowest sniffer pace the generator.
fn run_cell_streaming(
    suts: &[Sut],
    cfg: &CycleConfig,
    rate: Option<f64>,
    repeat: u32,
    exec: &ExecConfig,
    trace: Option<TraceSpec>,
) -> (f64, Vec<RunReport>) {
    let pipeline = exec.pipeline;
    let mut source = cell_source(cfg, rate, repeat, exec);
    let splitter = OpticalSplitter::new(suts.len() as u32);
    let (sender, outputs) = splitter.channel(pipeline.depth_chunks);

    let mut switch = MonitorSwitch::thesis_setup();
    let before = switch.snmp_read(8);
    let mut account = RateAccount::new();
    let faults = exec.faults.as_deref();
    let reports: Vec<RunReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = suts
            .iter()
            .zip(outputs)
            .map(|(sut, output)| {
                let spec = sut.spec;
                let sim = sut.sim.clone();
                let sink = trace.map(TraceSink::bounded).unwrap_or_default();
                let armed = faults.map(FaultPlan::arm_machine);
                let pools = Arc::clone(exec.stats.sim_pools());
                let batches = Arc::clone(exec.stats.sim_batches());
                let stage_times = exec.stage_times;
                scope.spawn(move || {
                    MachineSim::new(spec, sim)
                        .with_trace(sink)
                        .with_faults(armed)
                        .with_pool_probe(pools)
                        .with_batch_probe(batches)
                        .with_stage_times(stage_times)
                        .run_source(output)
                })
            })
            .collect();
        let mut chunk_index = 0u64;
        while let Some(chunk) = source.next_chunk() {
            // Splitter hiccup: a host-side producer stall. The splitter's
            // bounded queues absorb or backpressure it; results must stay
            // byte-identical.
            if let Some(us) = faults.and_then(|plan| plan.splitter_hiccup_us(chunk_index)) {
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
            chunk_index += 1;
            for tp in chunk.iter() {
                switch.forward(&tp.packet);
                account.note(tp);
            }
            sender.broadcast(&chunk);
        }
        drop(sender); // end of stream: consumers drain and finish
        handles
            .into_iter()
            .map(|h| h.join().expect("sniffer thread panicked"))
            .collect()
    });
    let after = switch.snmp_read(8);
    let delta = MonitorSwitch::delta(&before, &after);
    assert_eq!(
        delta.out_pkts, cfg.count,
        "switch must confirm every generated packet went out"
    );
    if pipeline.stream_cache_bytes > 0 {
        exec.stats
            .note_stream_resident(StreamCache::global().resident_bytes());
    }
    (account.achieved_mbps(), reports)
}

/// [`run_cell`] through the process-global [`RunCache`]: figures that
/// re-run the same baseline configuration pay for each cell once per
/// process.
///
/// A cache hit whose trace the collector has not yet recorded re-runs
/// the cell (counted as a run, not a hit): the memo table stores
/// distilled numbers only, and determinism makes the re-run's trace the
/// one the original computation would have produced.
fn run_cell_cached(
    suts: &[Sut],
    cfg: &CycleConfig,
    rate: Option<f64>,
    repeat: u32,
    exec: &ExecConfig,
) -> CellResult {
    let key = cell_key_faulted(suts, cfg, rate, repeat, exec.faults.as_deref());
    let cache = RunCache::global();
    let profiling = exec.stats.profiling();
    let trace_missing = exec
        .trace
        .as_ref()
        .is_some_and(|collector| !collector.contains(&cell_label(rate, repeat), wide_key(key)));
    if !trace_missing {
        let probe = profiling.then(Instant::now);
        if let Some(hit) = cache.get(&key) {
            if let Some(t0) = probe {
                exec.stats
                    .note_run_cache_hit(t0.elapsed().as_nanos() as u64);
            }
            exec.stats.record_cached();
            return hit;
        }
    }
    let started = profiling.then(Instant::now);
    let result = run_cell(suts, cfg, rate, repeat, exec);
    if let Some(t0) = started {
        exec.stats.note_cell_wall(t0.elapsed().as_nanos() as u64);
    }
    cache.insert(key, result.clone());
    exec.stats.record_run();
    result
}

/// Aggregate one rate point's cells (one per repeat) into a
/// [`PointResult`] by median, exactly as the thesis' §6.2.2 calculation
/// does over its seven repetitions.
///
/// Public so the result calculation can be property-tested over
/// arbitrary per-repeat inputs; `labels` is one label per SUT, matching
/// the order of `CellResult::suts`.
pub fn aggregate_point(
    rate: Option<f64>,
    generated: u64,
    labels: &[String],
    cells: &[CellResult],
) -> PointResult {
    let achieved_all: Vec<f64> = cells.iter().map(|c| c.achieved_mbps).collect();
    PointResult {
        target_mbps: rate,
        achieved_mbps: median(&achieved_all),
        generated,
        suts: labels
            .iter()
            .enumerate()
            .map(|(s, label)| {
                let series = |f: fn(&CellSut) -> f64| -> Vec<f64> {
                    cells.iter().map(|c| f(&c.suts[s])).collect()
                };
                SutPoint {
                    label: label.clone(),
                    capture: median(&series(|c| c.capture)),
                    capture_worst: median(&series(|c| c.worst)),
                    capture_best: median(&series(|c| c.best)),
                    cpu_busy: median(&series(|c| c.cpu_busy)),
                }
            })
            .collect(),
    }
}

/// Run one measurement point over all SUTs with repeats; aggregate by
/// median.
///
/// ```
/// use pcs_testbed::{run_point, standard_suts, CycleConfig};
/// use pcs_oskernel::SimConfig;
///
/// let suts = standard_suts(SimConfig::default());
/// let mut cfg = CycleConfig::mwn(5_000, 42);
/// cfg.repeats = 1;
/// let point = run_point(&suts, &cfg, Some(200.0));
/// assert_eq!(point.suts.len(), 4);
/// assert!(point.suts.iter().all(|s| s.capture > 0.99));
/// ```
pub fn run_point(suts: &[Sut], cfg: &CycleConfig, rate: Option<f64>) -> PointResult {
    let exec = ExecConfig::serial();
    let cells: Vec<CellResult> = (0..cfg.repeats)
        .map(|repeat| run_cell_cached(suts, cfg, rate, repeat, &exec))
        .collect();
    let labels: Vec<String> = suts.iter().map(|sut| sut.spec.label()).collect();
    aggregate_point(rate, cfg.count, &labels, &cells)
}

/// Run all sniffers over one shared stream, concurrently. Scoped worker
/// threads borrow the slice directly, so callers need no `Arc` plumbing.
pub fn run_sniffers(suts: &[Sut], stream: &[TimedPacket]) -> Vec<RunReport> {
    run_sniffers_with(suts, stream, None, None, None, None, false)
}

/// [`run_sniffers`], optionally with an enabled trace sink, an armed
/// fault plan, pool/batch probes and/or stage-time attribution per SUT.
#[allow(clippy::too_many_arguments)]
fn run_sniffers_with(
    suts: &[Sut],
    stream: &[TimedPacket],
    trace: Option<TraceSpec>,
    faults: Option<&FaultPlan>,
    pools: Option<&Arc<PoolProbe>>,
    batches: Option<&Arc<BatchProbe>>,
    stage_times: bool,
) -> Vec<RunReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = suts
            .iter()
            .map(|sut| {
                let spec = sut.spec;
                let sim = sut.sim.clone();
                let sink = trace.map(TraceSink::bounded).unwrap_or_default();
                let armed = faults.map(FaultPlan::arm_machine);
                let pools = pools.map(Arc::clone);
                let batches = batches.map(Arc::clone);
                scope.spawn(move || {
                    let mut machine = MachineSim::new(spec, sim)
                        .with_trace(sink)
                        .with_faults(armed)
                        .with_stage_times(stage_times);
                    if let Some(probe) = pools {
                        machine = machine.with_pool_probe(probe);
                    }
                    if let Some(probe) = batches {
                        machine = machine.with_batch_probe(probe);
                    }
                    let source = stream.iter().map(|tp| (tp.time, tp.packet.clone()));
                    machine.run(source)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sniffer thread panicked"))
            .collect()
    })
}

/// Sweep a list of rates (the thesis' 50–950 Mbit/s x-axis); `None`
/// entries mean "no inter-packet gap" (full speed). Serial; see
/// [`run_sweep_exec`] for the parallel engine.
pub fn run_sweep(suts: &[Sut], cfg: &CycleConfig, rates: &[Option<f64>]) -> Vec<PointResult> {
    run_sweep_exec(suts, cfg, rates, &ExecConfig::serial())
}

/// The parallel sweep engine: schedule every (rate × repeat) cell of the
/// sweep as an independent job on a bounded worker pool and assemble the
/// per-rate [`PointResult`]s **in input order**, regardless of which
/// worker finishes when.
///
/// Each cell generates its own packet stream (the per-repeat seed
/// derivation the serial cycle already used) and runs its SUT sims, so
/// the output is bit-identical to [`run_sweep`] for any `exec.jobs`.
/// Cells are memoized in the process-global [`RunCache`]; `exec.stats`
/// counts how many were simulated vs served from cache.
pub fn run_sweep_exec(
    suts: &[Sut],
    cfg: &CycleConfig,
    rates: &[Option<f64>],
    exec: &ExecConfig,
) -> Vec<PointResult> {
    let repeats = cfg.repeats as usize;
    let cells: Vec<(usize, u32)> = rates
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| (0..cfg.repeats).map(move |rep| (ri, rep)))
        .collect();
    let results: Vec<CellResult> = parallel_ordered(cells, exec.jobs, |_, (ri, repeat)| {
        run_cell_cached(suts, cfg, rates[ri], repeat, exec)
    });
    let labels: Vec<String> = suts.iter().map(|sut| sut.spec.label()).collect();
    rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            aggregate_point(
                rate,
                cfg.count,
                &labels,
                &results[ri * repeats..(ri + 1) * repeats],
            )
        })
        .collect()
}

/// The standard four-sniffer setup with a common simulation config.
pub fn standard_suts(sim: SimConfig) -> Vec<Sut> {
    MachineSpec::all_sniffers()
        .into_iter()
        .map(|spec| Sut {
            spec,
            sim: sim.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::PipelineConfig;
    use pcs_oskernel::BufferConfig;

    fn quick_cfg() -> CycleConfig {
        let mut c = CycleConfig::mwn(8_000, 42);
        c.repeats = 2;
        c
    }

    #[test]
    fn point_runs_all_four_sniffers() {
        let suts = standard_suts(SimConfig::default());
        // Long enough (~1 s of virtual time) for cpusage to get samples.
        let mut cfg = CycleConfig::mwn(30_000, 42);
        cfg.repeats = 2;
        let p = run_point(&suts, &cfg, Some(150.0));
        assert_eq!(p.suts.len(), 4);
        assert!(
            (p.achieved_mbps - 150.0).abs() < 20.0,
            "{}",
            p.achieved_mbps
        );
        for s in &p.suts {
            assert!(
                (s.capture - 1.0).abs() < 1e-9,
                "{} should capture all at 150 Mbit/s: {}",
                s.label,
                s.capture
            );
            assert!(s.cpu_busy > 0.0 && s.cpu_busy <= 100.0);
        }
    }

    #[test]
    fn full_speed_point() {
        let suts = vec![Sut {
            spec: MachineSpec::moorhen(),
            sim: SimConfig::default(),
        }];
        let p = run_point(&suts, &quick_cfg(), None);
        assert!(p.achieved_mbps > 700.0, "{}", p.achieved_mbps);
        assert!(p.target_mbps.is_none());
    }

    #[test]
    fn sweep_produces_ordered_points() {
        let suts = vec![Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig {
                buffers: BufferConfig::increased(),
                ..SimConfig::default()
            },
        }];
        let pts = run_sweep(&suts, &quick_cfg(), &[Some(100.0), Some(300.0)]);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].achieved_mbps < pts[1].achieved_mbps);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let suts = vec![Sut {
            spec: MachineSpec::snipe(),
            sim: SimConfig::default(),
        }];
        let mut cfg = quick_cfg();
        cfg.repeats = 3;
        let rates = [Some(100.0), Some(400.0), None];
        let serial = run_sweep(&suts, &cfg, &rates);
        for jobs in [2, 8] {
            let exec = ExecConfig::with_jobs(jobs);
            let parallel = run_sweep_exec(&suts, &cfg, &rates, &exec);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "jobs={jobs} must not change any bit of the results"
            );
            // Every cell was already computed by the serial run above.
            assert_eq!(exec.stats.cells_cached(), 9, "jobs={jobs}");
            assert_eq!(exec.stats.cells_run(), 0, "jobs={jobs}");
        }
    }

    #[test]
    fn streaming_cell_matches_materialized_cell_exactly() {
        // run_cell bypasses the global run cache, and stream sharing is
        // off, so every configuration below genuinely regenerates — the
        // comparison cannot be satisfied by any cache hit.
        let suts = vec![
            Sut {
                spec: MachineSpec::swan(),
                sim: SimConfig::default(),
            },
            Sut {
                spec: MachineSpec::flamingo(),
                sim: SimConfig::default(),
            },
        ];
        let cfg = quick_cfg();
        let exec = ExecConfig::serial();
        for rate in [Some(250.0), None] {
            let materialized = exec.clone().with_pipeline(PipelineConfig::materialized());
            let reference = run_cell(&suts, &cfg, rate, 0, &materialized);
            for chunk_packets in [1usize, 1009, 4096] {
                for depth_chunks in [1usize, 4] {
                    let pipeline = PipelineConfig {
                        chunk_packets,
                        depth_chunks,
                        stream_cache_bytes: 0,
                    };
                    let streamed =
                        run_cell(&suts, &cfg, rate, 0, &exec.clone().with_pipeline(pipeline));
                    assert_eq!(
                        reference, streamed,
                        "chunk={chunk_packets} depth={depth_chunks} rate={rate:?}"
                    );
                }
            }
        }
        assert_eq!(
            exec.stats.streams_generated() + exec.stats.streams_shared(),
            0
        );
    }

    #[test]
    fn stream_cache_on_and_off_compute_identical_cells() {
        // Unique packet count: the stream cache is process-global and
        // tests share one process, so this test owns its stream keys.
        let mut cfg = CycleConfig::mwn(8_209, 77);
        cfg.repeats = 1;
        let suts = vec![
            Sut {
                spec: MachineSpec::swan(),
                sim: SimConfig::default(),
            },
            Sut {
                spec: MachineSpec::moorhen(),
                sim: SimConfig::default(),
            },
        ];
        let exec = ExecConfig::serial();
        for rate in [Some(250.0), None] {
            let off = PipelineConfig::streaming().with_stream_cache(0);
            let reference = run_cell(&suts, &cfg, rate, 0, &exec.clone().with_pipeline(off));
            // First cached run generates and publishes …
            let cold = run_cell(&suts, &cfg, rate, 0, &exec);
            // … the second subscribes, through a *different* chunk size
            // (subscribers take the producer's chunk boundaries).
            let warm = run_cell(
                &suts,
                &cfg,
                rate,
                0,
                &exec.clone().with_pipeline(PipelineConfig::with_chunk(1009)),
            );
            assert_eq!(reference, cold, "rate={rate:?}");
            assert_eq!(reference, warm, "rate={rate:?}");
        }
        assert_eq!(exec.stats.streams_generated(), 2);
        assert_eq!(exec.stats.streams_shared(), 2);
        assert!(exec.stats.peak_stream_bytes() > 0);
    }

    #[test]
    fn sut_sets_share_one_generated_stream_per_point() {
        // The acceptance criterion of the stream cache: N SUT sets at
        // the same (rate, repeat) grid generate each stream exactly
        // once. Unique packet count — see above.
        let mut cfg = CycleConfig::mwn(8_101, 4242);
        cfg.repeats = 2;
        let rates = [Some(120.0), Some(360.0)];
        let set_a = vec![Sut {
            spec: MachineSpec::swan(),
            sim: SimConfig::default(),
        }];
        let set_b = vec![
            Sut {
                spec: MachineSpec::moorhen(),
                sim: SimConfig::default(),
            },
            Sut {
                spec: MachineSpec::flamingo(),
                sim: SimConfig::default(),
            },
        ];
        let exec = ExecConfig::with_jobs(2);
        run_sweep_exec(&set_a, &cfg, &rates, &exec);
        assert_eq!(exec.stats.streams_generated(), 4, "rates × repeats");
        assert_eq!(exec.stats.streams_shared(), 0);
        run_sweep_exec(&set_b, &cfg, &rates, &exec);
        assert_eq!(
            exec.stats.streams_generated(),
            4,
            "a different SUT set must not regenerate any stream"
        );
        assert_eq!(exec.stats.streams_shared(), 4);
        assert!(exec.stats.peak_stream_bytes() > 0);
    }

    #[test]
    fn empty_run_reports_zero_rate() {
        let cfg = CycleConfig::fixed(0, 512, 1);
        let (stream, achieved) = generate_run(&cfg, Some(100.0), 0);
        assert!(stream.is_empty());
        assert_eq!(achieved, 0.0);
        let streamed = run_cell(
            &[Sut {
                spec: MachineSpec::moorhen(),
                sim: SimConfig::default(),
            }],
            &cfg,
            Some(100.0),
            0,
            &ExecConfig::serial(),
        );
        assert_eq!(streamed.achieved_mbps, 0.0);
        assert_eq!(streamed.suts.len(), 1);
    }

    #[test]
    fn traced_cells_record_balanced_attributions_without_changing_results() {
        use pcs_trace::TraceCollector;
        // Unique packet count: run and stream caches are process-global.
        let mut cfg = CycleConfig::mwn(8_317, 99);
        cfg.repeats = 1;
        let suts = vec![
            Sut {
                spec: MachineSpec::swan(),
                sim: SimConfig::default(),
            },
            Sut {
                spec: MachineSpec::moorhen(),
                sim: SimConfig::default(),
            },
        ];
        let collector = Arc::new(TraceCollector::new(TraceSpec::default()));
        let exec = ExecConfig::serial().with_trace(Arc::clone(&collector));
        let traced = run_cell_cached(&suts, &cfg, Some(300.0), 0, &exec);
        assert_eq!(collector.len(), 1);
        let cell = &collector.cells()[0];
        assert_eq!(cell.label, "rate=300.0 rep=0");
        assert_eq!(cell.suts.len(), 2);
        for sut in &cell.suts {
            assert!(!sut.report.events.is_empty(), "{}", sut.label);
            assert!(!sut.attributions.is_empty(), "{}", sut.label);
            for attr in &sut.attributions {
                assert!(attr.balanced(), "{}: {attr:?}", sut.label);
                assert_eq!(attr.generated, cfg.count);
            }
        }
        // The same cell untraced must distill identically (the sink only
        // observes) and be served from the run cache.
        let untraced_exec = ExecConfig::serial();
        let untraced = run_cell_cached(&suts, &cfg, Some(300.0), 0, &untraced_exec);
        assert_eq!(format!("{traced:?}"), format!("{untraced:?}"));
        assert_eq!(untraced_exec.stats.cells_cached(), 1);
        // A fresh collector re-runs the cached cell to reproduce its
        // trace (the memo table stores distilled numbers only).
        let fresh = Arc::new(TraceCollector::new(TraceSpec::default()));
        let retrace_exec = ExecConfig::serial().with_trace(Arc::clone(&fresh));
        let retraced = run_cell_cached(&suts, &cfg, Some(300.0), 0, &retrace_exec);
        assert_eq!(retrace_exec.stats.cells_run(), 1);
        assert_eq!(retrace_exec.stats.cells_cached(), 0);
        assert_eq!(format!("{traced:?}"), format!("{retraced:?}"));
        assert_eq!(fresh.cells(), collector.cells(), "traces are reproducible");
    }

    #[test]
    fn profiling_collects_host_side_timings() {
        let mut cfg = CycleConfig::mwn(8_423, 5150);
        cfg.repeats = 2;
        let suts = vec![Sut {
            spec: MachineSpec::flamingo(),
            sim: SimConfig::default(),
        }];
        let exec = ExecConfig::serial();
        exec.stats.enable_profiling();
        assert!(exec.stats.profiling());
        run_sweep_exec(&suts, &cfg, &[Some(200.0)], &exec);
        assert!(exec.stats.cell_wall_ns() > 0);
        assert!(exec.stats.cell_wall_ns_max() <= exec.stats.cell_wall_ns());
        // Re-running hits the run cache; the hit latency is recorded.
        run_sweep_exec(&suts, &cfg, &[Some(200.0)], &exec);
        assert_eq!(exec.stats.cells_cached(), 2);
        // (hit service time can legitimately round to 0 ns; just make
        // sure nothing panicked and the counters stayed monotone)
        let wall = exec.stats.cell_wall_ns();
        run_sweep_exec(&suts, &cfg, &[Some(200.0)], &exec);
        assert_eq!(exec.stats.cell_wall_ns(), wall, "hits don't count as runs");
    }

    #[test]
    fn repeats_are_aggregated() {
        let suts = vec![Sut {
            spec: MachineSpec::moorhen(),
            sim: SimConfig::default(),
        }];
        let mut cfg = quick_cfg();
        cfg.repeats = 3;
        let p = run_point(&suts, &cfg, Some(200.0));
        assert_eq!(p.generated, 8_000);
        assert!((p.suts[0].capture - 1.0).abs() < 1e-9);
    }
}
