//! # pcs-trace — deterministic tracing and metrics for the capture sims
//!
//! A zero-cost-when-disabled observability layer for the `pcapbench`
//! reproduction of Schneider 2005. Three pieces:
//!
//! * **Packet-lifecycle events** ([`Stage`], [`TraceEvent`], [`TraceSink`])
//!   — wire arrival, NIC ring enqueue/drop, bus transfer, filter
//!   accept/reject, kernel-buffer enqueue/drop, app delivery, disk write —
//!   recorded into bounded per-sim buffers, timestamped with the *sim
//!   clock*, so identical seeds produce byte-identical traces. The opt-in
//!   `sched` filter additionally records per-CPU scheduling spans
//!   ([`SchedEvent`], [`WorkKind`]) — which work item ran on which CPU at
//!   which sim-ns — rendered as Perfetto `ph:"X"` timelines.
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges, and
//!   log-bucketed histograms (wire→app latency, queue depths, batch
//!   sizes), plus exact per-stage [`DropAttribution`] reproducing the
//!   paper's loss-localization tables.
//! * **Export** ([`export`]) — Chrome trace-event JSON (Perfetto-loadable)
//!   and CSV, with a deterministic cross-cell [`TraceCollector`].
//!
//! The disabled path is one enum-discriminant branch per event site
//! ([`TraceSink::Off`]); `--trace off` runs are byte-identical to an
//! uninstrumented build's output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod collect;
pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;
pub mod stagetime;

pub use attr::DropAttribution;
pub use collect::{CellTrace, SutTrace, TraceCollector};
pub use event::{SchedEvent, Stage, StageFilter, TraceEvent, WorkKind, APP_NONE, SEQ_NONE};
pub use metrics::MetricsRegistry;
pub use sink::{TraceReport, TraceSink, TraceSpec, DEFAULT_EVENT_CAP};
pub use stagetime::{CpuStageTimes, StageTimes, WORK_KINDS};
