//! Deterministic exports: Chrome trace-event JSON (Perfetto-loadable) and
//! CSV.
//!
//! All rendering is integer-based or fixed-precision — no locale, no float
//! shortest-round-trip — so identical traces serialize to byte-identical
//! files on every platform.

use std::fmt::Write as _;

use crate::collect::CellTrace;
use crate::event::{APP_NONE, SEQ_NONE};

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Microsecond timestamp with fixed 3-digit sub-µs precision, rendered
/// from the integer nanosecond clock (Chrome trace `ts` is in µs).
fn ts_us(t_ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", t_ns / 1000, t_ns % 1000);
}

/// Render collected cells as Chrome trace-event JSON.
///
/// Each cell becomes a process (`pid` = index in deterministic cell
/// order), each SUT a thread. Packet-lifecycle events are instant events
/// (`ph:"i"`); per-CPU scheduling records (present only under the `sched`
/// filter) are complete spans (`ph:"X"`) on synthetic per-CPU thread rows;
/// per-consumer drop attribution is emitted as counter events (`ph:"C"`)
/// whose args carry the exact bucket counts; each SUT ends with a
/// `metrics` summary event carrying its registry.
pub fn chrome_trace_json(cells: &[CellTrace]) -> String {
    let mut out = String::with_capacity(4096 + cells.len() * 1024);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
            out.push('\n');
        } else {
            out.push_str(",\n");
        }
    };
    for (pid, cell) in cells.iter().enumerate() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\""
        );
        escape_json(&cell.label, &mut out);
        let _ = write!(out, " [{:032x}]\"}}}}", cell.key);
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\
             \"args\":{{\"sort_index\":{pid}}}}}"
        );
        for (tid, sut) in cell.suts.iter().enumerate() {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\""
            );
            escape_json(&sut.label, &mut out);
            out.push_str("\"}}");
            let mut end_ns: u64 = 0;
            for ev in &sut.report.events {
                end_ns = end_ns.max(ev.t_ns);
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":",
                    ev.stage.name(),
                    ev.stage.category()
                );
                ts_us(ev.t_ns, &mut out);
                let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid},\"args\":{{");
                let mut first_arg = true;
                let mut arg = |out: &mut String, k: &str, v: u64| {
                    if !first_arg {
                        out.push(',');
                    }
                    first_arg = false;
                    let _ = write!(out, "\"{k}\":{v}");
                };
                if ev.seq != SEQ_NONE {
                    arg(&mut out, "seq", ev.seq);
                }
                arg(&mut out, "bytes", ev.bytes);
                arg(&mut out, "count", ev.count as u64);
                if ev.app != APP_NONE {
                    arg(&mut out, "app", ev.app as u64);
                }
                out.push_str("}}");
            }
            // Per-CPU scheduling spans on synthetic thread rows (one per
            // CPU), so Perfetto shows a timeline per CPU under the SUT.
            // Absent unless the `sched` filter was requested, keeping
            // untraced-sched exports byte-identical.
            if !sut.report.sched.is_empty() {
                let sched_tid = |cpu: u16| 1000 + tid as u64 * 64 + cpu as u64;
                let mut named: u64 = 0;
                for ev in &sut.report.sched {
                    end_ns = end_ns.max(ev.t_ns + ev.dur_ns);
                    if named & (1u64 << (ev.cpu % 64)) == 0 {
                        named |= 1u64 << (ev.cpu % 64);
                        sep(&mut out, &mut first);
                        let _ = write!(
                            out,
                            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\
                             \"args\":{{\"name\":\"cpu{} [",
                            sched_tid(ev.cpu),
                            ev.cpu
                        );
                        escape_json(&sut.label, &mut out);
                        out.push_str("]\"}}");
                    }
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":",
                        ev.kind.name()
                    );
                    ts_us(ev.t_ns, &mut out);
                    out.push_str(",\"dur\":");
                    ts_us(ev.dur_ns, &mut out);
                    let _ = write!(
                        out,
                        ",\"pid\":{pid},\"tid\":{},\"args\":{{\"cpu\":{}",
                        sched_tid(ev.cpu),
                        ev.cpu
                    );
                    if ev.app != APP_NONE {
                        let _ = write!(out, ",\"app\":{}", ev.app);
                    }
                    out.push_str("}}");
                }
            }
            // Exact drop attribution per consumer, as counter events. These
            // come from the sim's end-of-run accounting, not the (bounded)
            // event buffer, so the bucket sums are exact even when the
            // event log truncated.
            for (app, attr) in sut.attributions.iter().enumerate() {
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"drop_attribution/app{app}\",\"ph\":\"C\",\"ts\":"
                );
                ts_us(end_ns, &mut out);
                let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid},\"args\":{{");
                for (i, (col, v)) in crate::DropAttribution::COLUMNS
                    .iter()
                    .zip(attr.values())
                    .enumerate()
                {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{col}\":{v}");
                }
                out.push_str("}}");
            }
            // Metrics summary for the SUT.
            sep(&mut out, &mut first);
            out.push_str(
                "{\"name\":\"metrics\",\"cat\":\"summary\",\"ph\":\"i\",\"s\":\"t\",\"ts\":",
            );
            ts_us(end_ns, &mut out);
            let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid},\"args\":{{");
            let mut first_arg = true;
            let key = |out: &mut String, first_arg: &mut bool, k: &str| {
                if !*first_arg {
                    out.push(',');
                }
                *first_arg = false;
                out.push('"');
                escape_json(k, out);
                out.push_str("\":");
            };
            key(&mut out, &mut first_arg, "truncated_events");
            let _ = write!(out, "{}", sut.report.truncated);
            for (name, v) in sut.report.metrics.counters() {
                key(&mut out, &mut first_arg, &format!("counter/{name}"));
                let _ = write!(out, "{v}");
            }
            for (name, v) in sut.report.metrics.gauges() {
                key(&mut out, &mut first_arg, &format!("gauge/{name}"));
                // JSON has no NaN/inf literals; a non-finite gauge becomes
                // null rather than corrupting the whole file.
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            for (name, h) in sut.report.metrics.histograms() {
                key(&mut out, &mut first_arg, &format!("hist/{name}/count"));
                let _ = write!(out, "{}", h.count());
                key(&mut out, &mut first_arg, &format!("hist/{name}/min"));
                let _ = write!(out, "{}", h.min());
                key(&mut out, &mut first_arg, &format!("hist/{name}/max"));
                let _ = write!(out, "{}", h.max());
                key(&mut out, &mut first_arg, &format!("hist/{name}/mean"));
                let _ = write!(out, "{:.3}", h.mean());
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render collected cells as a flat CSV (one row per event).
pub fn events_csv(cells: &[CellTrace]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("cell_key,cell,sut,t_ns,stage,category,seq,bytes,app,count\n");
    for cell in cells {
        for sut in &cell.suts {
            for ev in &sut.report.events {
                let _ = write!(out, "{:032x},", cell.key);
                csv_field(&cell.label, &mut out);
                out.push(',');
                csv_field(&sut.label, &mut out);
                let _ = write!(
                    out,
                    ",{},{},{},",
                    ev.t_ns,
                    ev.stage.name(),
                    ev.stage.category()
                );
                if ev.seq != SEQ_NONE {
                    let _ = write!(out, "{}", ev.seq);
                }
                let _ = write!(out, ",{},", ev.bytes);
                if ev.app != APP_NONE {
                    let _ = write!(out, "{}", ev.app);
                }
                let _ = writeln!(out, ",{}", ev.count);
            }
        }
    }
    out
}

/// Quote a CSV field if it contains a comma, quote, or newline.
fn csv_field(s: &str, out: &mut String) {
    if s.contains([',', '"', '\n']) {
        out.push('"');
        out.push_str(&s.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Minimal JSON well-formedness checker (the build has no serde_json).
///
/// Accepts exactly the RFC 8259 grammar; used by tests and smoke checks to
/// prove emitted traces parse before they ever reach Perfetto.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos:?}")),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control char at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("bad number at byte {start}"));
    }
    if b[int_start] == b'0' && *pos > int_start + 1 {
        return Err(format!("leading zero at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::SutTrace;
    use crate::event::{Stage, TraceEvent};
    use crate::sink::TraceReport;
    use crate::DropAttribution;

    fn sample_cells() -> Vec<CellTrace> {
        let mut metrics = crate::MetricsRegistry::new();
        metrics.inc("irq_fires", 2);
        metrics.set_gauge("final_depth", 1.25);
        metrics.observe("latency_ns", 1500);
        vec![CellTrace {
            label: "count=10 seed=1 rate=100 repeat=0".into(),
            key: 0xdead_beef,
            achieved_mbps: 100.0,
            suts: vec![SutTrace {
                label: "FreeBSD \"tcpdump\"".into(),
                report: TraceReport {
                    events: vec![
                        TraceEvent {
                            t_ns: 0,
                            stage: Stage::Wire,
                            seq: 0,
                            bytes: 60,
                            app: APP_NONE,
                            count: 1,
                        },
                        TraceEvent {
                            t_ns: 1234,
                            stage: Stage::AppDeliver,
                            seq: 0,
                            bytes: 60,
                            app: 0,
                            count: 1,
                        },
                    ],
                    sched: Vec::new(),
                    truncated: 0,
                    metrics,
                },
                attributions: vec![DropAttribution {
                    generated: 10,
                    nic_drops: 1,
                    delivered: 9,
                    ..Default::default()
                }],
                stage_times: None,
            }],
        }]
    }

    #[test]
    fn chrome_json_is_valid_and_deterministic() {
        let cells = sample_cells();
        let a = chrome_trace_json(&cells);
        let b = chrome_trace_json(&cells);
        assert_eq!(a, b);
        validate_json(&a).expect("emitted trace JSON must be well-formed");
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"app_deliver\""));
        assert!(a.contains("drop_attribution/app0"));
        assert!(a.contains("\"generated\":10"));
        // escaped quote from the SUT label survived
        assert!(a.contains("FreeBSD \\\"tcpdump\\\""));
    }

    #[test]
    fn sched_spans_render_as_complete_events_on_cpu_rows() {
        use crate::event::{SchedEvent, WorkKind, APP_NONE};
        let mut cells = sample_cells();
        let without = chrome_trace_json(&cells);
        cells[0].suts[0].report.sched = vec![
            SchedEvent {
                t_ns: 100,
                dur_ns: 50,
                cpu: 0,
                app: APP_NONE,
                kind: WorkKind::KernelBatch,
            },
            SchedEvent {
                t_ns: 200,
                dur_ns: 75,
                cpu: 1,
                app: 0,
                kind: WorkKind::AppChunk,
            },
        ];
        let with = chrome_trace_json(&cells);
        assert_ne!(without, with);
        validate_json(&with).expect("sched spans must keep the JSON well-formed");
        assert!(with.contains("\"ph\":\"X\""));
        assert!(with.contains("\"kernel_batch\""));
        assert!(with.contains("\"app_chunk\""));
        assert!(with.contains("cpu0 ["));
        assert!(with.contains("cpu1 ["));
        assert!(with.contains("\"dur\":0.075"));
        // Empty sched leaves the export untouched (byte-identity guard).
        cells[0].suts[0].report.sched.clear();
        assert_eq!(chrome_trace_json(&cells), without);
    }

    #[test]
    fn non_finite_gauges_stay_valid_json() {
        let mut cells = sample_cells();
        cells[0].suts[0].report.metrics.set_gauge("bad", f64::NAN);
        cells[0].suts[0]
            .report
            .metrics
            .set_gauge("worse", f64::INFINITY);
        let json = chrome_trace_json(&cells);
        validate_json(&json).expect("non-finite gauges must not corrupt the JSON");
        assert!(json.contains("\"gauge/bad\":null"));
        assert!(json.contains("\"gauge/worse\":null"));
        assert!(json.contains("\"gauge/final_depth\":1.250000"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cells = sample_cells();
        let csv = events_csv(&cells);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cell_key,cell,sut,t_ns,stage,category,seq,bytes,app,count"
        );
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("app_deliver"));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            "[1,2,3]",
            "{\"a\":{\"b\":[true,false,null,\"x\\n\\u0041\"]}}",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
        for bad in ["{", "[1,]", "{\"a\":}", "01", "\"\\q\"", "[] []", "{'a':1}"] {
            assert!(validate_json(bad).is_err(), "accepted bad JSON: {bad}");
        }
    }
}
