//! Named counters, gauges, and log-bucketed histograms for one machine sim.

use std::collections::BTreeMap;

use pcs_des::stats::{LogHistogram, QuantileDigest};

/// Per-sim metrics registry.
///
/// Keys are `BTreeMap`s so iteration order — and therefore every rendered
/// export — is deterministic. Lookups on the hot path are by `&str` and
/// only allocate the first time a name is seen.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
    digests: BTreeMap<String, QuantileDigest>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named counter.
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_owned(), by);
            }
        }
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Record one observation into the named log-bucketed histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = LogHistogram::new();
                h.record(value);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Mutable access to the named histogram, creating it (empty) the
    /// first time the name is seen. Lets hot-path callers hoist the map
    /// lookup out of a per-packet loop: the recorded values and counts
    /// are identical to calling [`MetricsRegistry::observe`] per value.
    pub fn histogram_entry(&mut self, name: &str) -> &mut LogHistogram {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), LogHistogram::new());
        }
        self.histograms.get_mut(name).expect("just inserted")
    }

    /// Mutable access to the named quantile digest, creating it (empty)
    /// the first time the name is seen. Digests are the mergeable,
    /// order-independent latency summaries the run ledger renders
    /// (p50/p90/p99/p99.9); like [`MetricsRegistry::histogram_entry`],
    /// hot-path callers hoist the map lookup out of per-packet loops.
    pub fn digest_entry(&mut self, name: &str) -> &mut QuantileDigest {
        if !self.digests.contains_key(name) {
            self.digests.insert(name.to_owned(), QuantileDigest::new());
        }
        self.digests.get_mut(name).expect("just inserted")
    }

    /// Counter value, 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// The named quantile digest, if it was ever created.
    pub fn digest(&self, name: &str) -> Option<&QuantileDigest> {
        self.digests.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All quantile digests in name order.
    pub fn digests(&self) -> impl Iterator<Item = (&str, &QuantileDigest)> {
        self.digests.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.digests.is_empty()
    }

    /// Fold another registry into this one (counters add, gauges take the
    /// other's value, histograms and digests merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            self.inc(name, v);
        }
        for (name, v) in other.gauges() {
            self.set_gauge(name, v);
        }
        for (name, h) in other.histograms() {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.to_owned(), h.clone());
                }
            }
        }
        for (name, d) in other.digests() {
            match self.digests.get_mut(name) {
                Some(mine) => mine.merge(d),
                None => {
                    self.digests.insert(name.to_owned(), d.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_basics() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.inc("packets", 3);
        m.inc("packets", 2);
        m.set_gauge("depth", 1.5);
        m.set_gauge("depth", 2.5);
        m.observe("latency_ns", 100);
        m.observe("latency_ns", 900);
        assert_eq!(m.counter("packets"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("depth"), Some(2.5));
        assert_eq!(m.histogram("latency_ns").unwrap().count(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn registry_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.observe("h", 8);
        b.set_gauge("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(7.0));
    }

    #[test]
    fn registry_digests_record_and_merge() {
        let mut a = MetricsRegistry::new();
        a.digest_entry("lat").record(100);
        a.digest_entry("lat").record(900);
        assert_eq!(a.digest("lat").unwrap().count(), 2);
        assert!(a.digest("missing").is_none());
        assert!(!a.is_empty());
        let mut b = MetricsRegistry::new();
        b.digest_entry("lat").record(500);
        b.digest_entry("other").record(1);
        a.merge(&b);
        assert_eq!(a.digest("lat").unwrap().count(), 3);
        assert_eq!(a.digest("other").unwrap().count(), 1);
        let names: Vec<&str> = a.digests().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["lat", "other"]);
    }
}
