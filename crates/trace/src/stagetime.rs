//! Per-CPU, per-work-kind simulated-time attribution.
//!
//! Where every nanosecond of each CPU's sim time went: busy time split
//! by the [`WorkKind`] that occupied the CPU, the share of that busy
//! time added by SMT stretching and preemption faults, and idle time.
//! Zero-cost-when-off: the scheduler carries an `Option` of this and
//! records through one branch per dispatch/finish; when enabled the
//! account is a fixed array per CPU, allocated once at arm time — the
//! pooled per-packet path stays allocation-free (DESIGN.md §15).
//!
//! The accounting mirrors the scheduler's `CpuAccounting` exactly, so
//! the invariant `Σ busy_ns + idle_ns == acct.total()` holds per CPU —
//! the sim-wide oracle checks it on every report. The macro-batched
//! engine (DESIGN.md §17) leaves this account untouched by
//! construction: coalesced NIC runs batch event *admission*, not work
//! execution, so every dispatch/finish charge happens at the same
//! instant with the same amounts as under `PCS_NO_BATCH=1`.

use crate::event::WorkKind;

/// Number of work kinds a [`CpuStageTimes`] attributes busy time to.
pub const WORK_KINDS: usize = WorkKind::ALL.len();

/// One CPU's simulated-time account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStageTimes {
    /// Busy nanoseconds per [`WorkKind`] (indexed by discriminant). Each
    /// entry is the full wall occupancy of that kind's work items —
    /// stretch included — so the busy entries plus `idle_ns` sum to the
    /// CPU's total accounted time.
    pub busy_ns: [u64; WORK_KINDS],
    /// Of the busy time, nanoseconds added at dispatch by SMT sibling
    /// stretching and preemption-fault holds, per [`WorkKind`]. Always
    /// `stretch_ns[k] <= busy_ns[k]`.
    pub stretch_ns: [u64; WORK_KINDS],
    /// Idle nanoseconds (identical to the accounting's idle bucket).
    pub idle_ns: u64,
}

impl CpuStageTimes {
    /// Total busy nanoseconds over every work kind.
    pub fn busy_total(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Total stretch nanoseconds over every work kind.
    pub fn stretch_total(&self) -> u64 {
        self.stretch_ns.iter().sum()
    }

    /// Busy plus idle — must equal the CPU's accounted total.
    pub fn total(&self) -> u64 {
        self.busy_total() + self.idle_ns
    }
}

/// Per-stage time attribution for one machine run: one account per CPU.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// One account per logical CPU, in CPU order.
    pub cpus: Vec<CpuStageTimes>,
}

impl StageTimes {
    /// An all-zero account for `ncpu` CPUs.
    pub fn new(ncpu: usize) -> StageTimes {
        StageTimes {
            cpus: vec![CpuStageTimes::default(); ncpu],
        }
    }

    /// Charge `ns` of busy time for `kind` on `cpu`.
    #[inline]
    pub fn add_busy(&mut self, cpu: usize, kind: WorkKind, ns: u64) {
        self.cpus[cpu].busy_ns[kind as usize] += ns;
    }

    /// Charge `ns` of dispatch-added stretch (SMT sibling or preemption
    /// hold) for `kind` on `cpu`.
    #[inline]
    pub fn add_stretch(&mut self, cpu: usize, kind: WorkKind, ns: u64) {
        self.cpus[cpu].stretch_ns[kind as usize] += ns;
    }

    /// Charge `ns` of idle time on `cpu`.
    #[inline]
    pub fn add_idle(&mut self, cpu: usize, ns: u64) {
        self.cpus[cpu].idle_ns += ns;
    }

    /// Fold another run's account into this one (element-wise sum; both
    /// sides must describe the same CPU topology or the wider wins).
    pub fn merge(&mut self, other: &StageTimes) {
        if self.cpus.len() < other.cpus.len() {
            self.cpus.resize(other.cpus.len(), CpuStageTimes::default());
        }
        for (mine, theirs) in self.cpus.iter_mut().zip(other.cpus.iter()) {
            for k in 0..WORK_KINDS {
                mine.busy_ns[k] += theirs.busy_ns[k];
                mine.stretch_ns[k] += theirs.stretch_ns[k];
            }
            mine.idle_ns += theirs.idle_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_kind() {
        let mut st = StageTimes::new(2);
        st.add_busy(0, WorkKind::KernelBatch, 100);
        st.add_busy(0, WorkKind::KernelBatch, 50);
        st.add_busy(1, WorkKind::AppChunk, 30);
        st.add_stretch(0, WorkKind::KernelBatch, 20);
        st.add_idle(0, 850);
        assert_eq!(st.cpus[0].busy_ns[WorkKind::KernelBatch as usize], 150);
        assert_eq!(st.cpus[0].stretch_ns[WorkKind::KernelBatch as usize], 20);
        assert_eq!(st.cpus[0].busy_total(), 150);
        assert_eq!(st.cpus[0].stretch_total(), 20);
        assert_eq!(st.cpus[0].total(), 1000);
        assert_eq!(st.cpus[1].busy_total(), 30);
        assert_eq!(st.cpus[1].idle_ns, 0);
    }

    #[test]
    fn merge_sums_elementwise_and_widens() {
        let mut a = StageTimes::new(1);
        a.add_busy(0, WorkKind::Gzip, 5);
        let mut b = StageTimes::new(2);
        b.add_busy(0, WorkKind::Gzip, 7);
        b.add_idle(1, 11);
        a.merge(&b);
        assert_eq!(a.cpus.len(), 2);
        assert_eq!(a.cpus[0].busy_ns[WorkKind::Gzip as usize], 12);
        assert_eq!(a.cpus[1].idle_ns, 11);
    }
}
