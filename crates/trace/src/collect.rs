//! Cross-cell trace collection for a sweep.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::attr::DropAttribution;
use crate::sink::{TraceReport, TraceSpec};
use crate::stagetime::StageTimes;

/// Everything one traced SUT produced inside one cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SutTrace {
    /// Human-readable SUT label (e.g. "FreeBSD/tcpdump").
    pub label: String,
    /// The sim's event log and metrics.
    pub report: TraceReport,
    /// Exact per-consumer drop attribution for this SUT's run.
    pub attributions: Vec<DropAttribution>,
    /// Per-CPU/per-work-kind sim-time attribution, present when the run
    /// was executed with stage-time accounting armed.
    pub stage_times: Option<StageTimes>,
}

/// One traced cell: a (config, rate, repeat) point executed against a set
/// of SUTs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// Human-readable cell label (rate, repeat, workload parameters).
    pub label: String,
    /// The cell's 128-bit memoization fingerprint — unique per distinct
    /// (SUT set, workload, rate, repeat).
    pub key: u128,
    /// Achieved frame data rate (Mbit/s) of this cell's stream.
    pub achieved_mbps: f64,
    /// Per-SUT traces, in SUT order.
    pub suts: Vec<SutTrace>,
}

/// Thread-safe collector shared by all sweep workers.
///
/// Cells are keyed by their memoization fingerprint and stored in a
/// `BTreeMap`, so the exported ordering is independent of worker
/// scheduling: identical seeds and configs produce byte-identical exports
/// at any `--jobs`. Re-recording an already-present key is a no-op — a
/// run-cache hit or a concurrently duplicated cell would reproduce the
/// identical trace anyway.
#[derive(Debug, Default)]
pub struct TraceCollector {
    spec: TraceSpec,
    cells: Mutex<BTreeMap<(String, u128), CellTrace>>,
}

impl TraceCollector {
    /// A collector whose sinks use `spec`.
    pub fn new(spec: TraceSpec) -> Self {
        TraceCollector {
            spec,
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// The sink configuration cells should be traced with.
    pub fn spec(&self) -> TraceSpec {
        self.spec
    }

    /// Whether a cell with this label/key was already recorded.
    pub fn contains(&self, label: &str, key: u128) -> bool {
        self.cells
            .lock()
            .expect("trace collector poisoned")
            .contains_key(&(label.to_owned(), key))
    }

    /// Record one cell's traces; first write wins.
    pub fn record_cell(&self, label: String, key: u128, achieved_mbps: f64, suts: Vec<SutTrace>) {
        let mut cells = self.cells.lock().expect("trace collector poisoned");
        cells.entry((label.clone(), key)).or_insert(CellTrace {
            label,
            key,
            achieved_mbps,
            suts,
        });
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("trace collector poisoned").len()
    }

    /// True when no cell was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded cells in deterministic (label, key) order.
    pub fn cells(&self) -> Vec<CellTrace> {
        self.cells
            .lock()
            .expect("trace collector poisoned")
            .values()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_orders_and_dedups() {
        let c = TraceCollector::new(TraceSpec::default());
        assert!(c.is_empty());
        c.record_cell("b".into(), 2, 0.0, vec![]);
        c.record_cell("a".into(), 1, 0.0, vec![]);
        c.record_cell(
            "b".into(),
            2,
            0.0,
            vec![SutTrace {
                label: "ignored duplicate".into(),
                ..SutTrace::default()
            }],
        );
        assert_eq!(c.len(), 2);
        assert!(c.contains("a", 1));
        assert!(!c.contains("a", 2));
        let cells = c.cells();
        assert_eq!(cells[0].label, "a");
        assert_eq!(cells[1].label, "b");
        // first write won
        assert!(cells[1].suts.is_empty());
    }
}
