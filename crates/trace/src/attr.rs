//! Per-stage drop attribution: where every generated packet ended up.

/// Exhaustive accounting of one consumer's view of a run: every generated
/// packet lands in exactly one bucket, so
/// `generated == delivered + dropped()` holds exactly (see
/// [`DropAttribution::balanced`]). This reproduces the paper's
/// loss-localization tables (which stage killed the packet), extended with
/// end-of-run residue buckets so the identity is exact even for runs that
/// stop with packets in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropAttribution {
    /// Packets offered to the NIC (equals packets generated for the cell).
    pub generated: u64,
    /// Lost at the NIC: bus too slow or RX ring full.
    pub nic_drops: u64,
    /// Still sitting in the NIC ring when the run stopped.
    pub nic_residue: u64,
    /// Rejected by this consumer's packet filter.
    pub filter_rejects: u64,
    /// Lost at the kernel: capture buffer full.
    pub kernel_buffer_drops: u64,
    /// Lost at the kernel: shared packet pool exhausted.
    pub kernel_pool_drops: u64,
    /// Accepted and stored, but still in a kernel buffer at stop.
    pub kernel_residue: u64,
    /// Handed to the application but not yet processed at stop.
    pub app_residue: u64,
    /// Fully processed by the application.
    pub delivered: u64,
}

impl DropAttribution {
    /// Column headers matching [`DropAttribution::values`].
    pub const COLUMNS: [&'static str; 9] = [
        "generated",
        "nic_drops",
        "nic_residue",
        "filter_rejects",
        "kernel_buffer_drops",
        "kernel_pool_drops",
        "kernel_residue",
        "app_residue",
        "delivered",
    ];

    /// All buckets in column order.
    pub fn values(&self) -> [u64; 9] {
        [
            self.generated,
            self.nic_drops,
            self.nic_residue,
            self.filter_rejects,
            self.kernel_buffer_drops,
            self.kernel_pool_drops,
            self.kernel_residue,
            self.app_residue,
            self.delivered,
        ]
    }

    /// Packets that did not reach the application: the sum of every
    /// non-`delivered` bucket.
    pub fn dropped(&self) -> u64 {
        self.nic_drops
            + self.nic_residue
            + self.filter_rejects
            + self.kernel_buffer_drops
            + self.kernel_pool_drops
            + self.kernel_residue
            + self.app_residue
    }

    /// The conservation identity: every generated packet is accounted for.
    pub fn balanced(&self) -> bool {
        self.generated == self.delivered + self.dropped()
    }

    /// Add another attribution bucket-by-bucket (for roll-up tables).
    pub fn absorb(&mut self, other: &DropAttribution) {
        self.generated += other.generated;
        self.nic_drops += other.nic_drops;
        self.nic_residue += other.nic_residue;
        self.filter_rejects += other.filter_rejects;
        self.kernel_buffer_drops += other.kernel_buffer_drops;
        self.kernel_pool_drops += other.kernel_pool_drops;
        self.kernel_residue += other.kernel_residue;
        self.app_residue += other.app_residue;
        self.delivered += other.delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_and_absorb() {
        let mut a = DropAttribution {
            generated: 10,
            nic_drops: 2,
            filter_rejects: 1,
            delivered: 7,
            ..Default::default()
        };
        assert!(a.balanced());
        assert_eq!(a.dropped(), 3);

        let b = DropAttribution {
            generated: 5,
            kernel_buffer_drops: 5,
            ..Default::default()
        };
        assert!(b.balanced());
        a.absorb(&b);
        assert_eq!(a.generated, 15);
        assert_eq!(a.dropped(), 8);
        assert!(a.balanced());

        let broken = DropAttribution {
            generated: 3,
            delivered: 1,
            ..Default::default()
        };
        assert!(!broken.balanced());
    }
}
