//! Per-stage drop attribution: where every generated packet ended up.

/// Exhaustive accounting of one consumer's view of a run: every generated
/// packet lands in exactly one bucket, so
/// `generated == delivered + dropped()` holds exactly (see
/// [`DropAttribution::balanced`]). This reproduces the paper's
/// loss-localization tables (which stage killed the packet), extended with
/// end-of-run residue buckets so the identity is exact even for runs that
/// stop with packets in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropAttribution {
    /// Packets offered to the NIC (equals packets generated for the cell).
    pub generated: u64,
    /// Lost at the NIC: bus too slow or RX ring full.
    pub nic_drops: u64,
    /// Still sitting in the NIC ring when the run stopped.
    pub nic_residue: u64,
    /// Rejected by this consumer's packet filter.
    pub filter_rejects: u64,
    /// Lost at the kernel: capture buffer full.
    pub kernel_buffer_drops: u64,
    /// Lost at the kernel: shared packet pool exhausted.
    pub kernel_pool_drops: u64,
    /// Accepted and stored, but still in a kernel buffer at stop.
    pub kernel_residue: u64,
    /// Handed to the application but not yet processed at stop.
    pub app_residue: u64,
    /// Fully processed by the application.
    pub delivered: u64,
}

impl DropAttribution {
    /// Column headers matching [`DropAttribution::values`].
    pub const COLUMNS: [&'static str; 9] = [
        "generated",
        "nic_drops",
        "nic_residue",
        "filter_rejects",
        "kernel_buffer_drops",
        "kernel_pool_drops",
        "kernel_residue",
        "app_residue",
        "delivered",
    ];

    /// All buckets in column order.
    pub fn values(&self) -> [u64; 9] {
        [
            self.generated,
            self.nic_drops,
            self.nic_residue,
            self.filter_rejects,
            self.kernel_buffer_drops,
            self.kernel_pool_drops,
            self.kernel_residue,
            self.app_residue,
            self.delivered,
        ]
    }

    /// Packets that did not reach the application: the sum of every
    /// non-`delivered` bucket. Saturates rather than overflowing when
    /// roll-ups over many cells push bucket sums past `u64::MAX`.
    pub fn dropped(&self) -> u64 {
        self.nic_drops
            .saturating_add(self.nic_residue)
            .saturating_add(self.filter_rejects)
            .saturating_add(self.kernel_buffer_drops)
            .saturating_add(self.kernel_pool_drops)
            .saturating_add(self.kernel_residue)
            .saturating_add(self.app_residue)
    }

    /// The conservation identity: every generated packet is accounted for.
    /// Summed in 128 bits so the check stays exact even where
    /// [`DropAttribution::dropped`] would saturate.
    pub fn balanced(&self) -> bool {
        let accounted: u128 = self.values().iter().skip(1).map(|&v| v as u128).sum();
        self.generated as u128 == accounted
    }

    /// Add another attribution bucket-by-bucket (for roll-up tables).
    /// Each bucket saturates at `u64::MAX` instead of wrapping.
    pub fn absorb(&mut self, other: &DropAttribution) {
        self.generated = self.generated.saturating_add(other.generated);
        self.nic_drops = self.nic_drops.saturating_add(other.nic_drops);
        self.nic_residue = self.nic_residue.saturating_add(other.nic_residue);
        self.filter_rejects = self.filter_rejects.saturating_add(other.filter_rejects);
        self.kernel_buffer_drops = self
            .kernel_buffer_drops
            .saturating_add(other.kernel_buffer_drops);
        self.kernel_pool_drops = self
            .kernel_pool_drops
            .saturating_add(other.kernel_pool_drops);
        self.kernel_residue = self.kernel_residue.saturating_add(other.kernel_residue);
        self.app_residue = self.app_residue.saturating_add(other.app_residue);
        self.delivered = self.delivered.saturating_add(other.delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_and_absorb() {
        let mut a = DropAttribution {
            generated: 10,
            nic_drops: 2,
            filter_rejects: 1,
            delivered: 7,
            ..Default::default()
        };
        assert!(a.balanced());
        assert_eq!(a.dropped(), 3);

        let b = DropAttribution {
            generated: 5,
            kernel_buffer_drops: 5,
            ..Default::default()
        };
        assert!(b.balanced());
        a.absorb(&b);
        assert_eq!(a.generated, 15);
        assert_eq!(a.dropped(), 8);
        assert!(a.balanced());

        let broken = DropAttribution {
            generated: 3,
            delivered: 1,
            ..Default::default()
        };
        assert!(!broken.balanced());
    }

    #[test]
    fn near_max_sums_do_not_overflow() {
        // A roll-up whose buckets individually approach u64::MAX must
        // neither panic (debug) nor wrap (release): dropped() saturates
        // and balanced() widens to 128 bits.
        let huge = DropAttribution {
            generated: u64::MAX,
            nic_drops: u64::MAX / 2,
            kernel_buffer_drops: u64::MAX / 2,
            delivered: 1,
            ..Default::default()
        };
        assert_eq!(huge.dropped(), u64::MAX - 1);
        assert!(huge.balanced());
        let mut a = huge;
        a.absorb(&huge);
        assert_eq!(a.generated, u64::MAX);
        assert_eq!(a.dropped(), u64::MAX);
    }

    /// Build an attribution from nine bucket values in column order.
    fn from_values(v: &[u64; 9]) -> DropAttribution {
        DropAttribution {
            generated: v[0],
            nic_drops: v[1],
            nic_residue: v[2],
            filter_rejects: v[3],
            kernel_buffer_drops: v[4],
            kernel_pool_drops: v[5],
            kernel_residue: v[6],
            app_residue: v[7],
            delivered: v[8],
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A strategy over arbitrary bucket vectors, mixing small counts
        /// with values near `u64::MAX` so saturation paths are exercised.
        fn buckets() -> impl Strategy<Value = [u64; 9]> {
            proptest::collection::vec(
                prop_oneof![
                    (0u64..1_000_000).boxed(),
                    (u64::MAX - 1_000..=u64::MAX).boxed(),
                ],
                9..10,
            )
            .prop_map(|v| {
                let mut a = [0u64; 9];
                a.copy_from_slice(&v);
                a
            })
        }

        proptest! {
            // absorb is commutative and associative bucket-wise: u64
            // saturating addition is both, and absorb applies it
            // independently per bucket.
            #[test]
            fn absorb_is_commutative(x in buckets(), y in buckets()) {
                let (a, b) = (from_values(&x), from_values(&y));
                let mut ab = a;
                ab.absorb(&b);
                let mut ba = b;
                ba.absorb(&a);
                prop_assert_eq!(ab, ba);
            }

            #[test]
            fn absorb_is_associative(x in buckets(), y in buckets(), z in buckets()) {
                let (a, b, c) = (from_values(&x), from_values(&y), from_values(&z));
                let mut bc = b;
                bc.absorb(&c);
                let mut a_bc = a;
                a_bc.absorb(&bc);
                let mut ab = a;
                ab.absorb(&b);
                let mut ab_c = ab;
                ab_c.absorb(&c);
                prop_assert_eq!(a_bc, ab_c);
            }

            // Any way of splitting `generated` packets across the eight
            // outcome buckets balances, and absorbing balanced
            // attributions stays balanced (non-saturating regime).
            #[test]
            fn arbitrary_decompositions_balance(
                x in proptest::collection::vec(0u64..1_000_000_000, 8..9),
                y in proptest::collection::vec(0u64..1_000_000_000, 8..9),
            ) {
                let make = |outcomes: &[u64]| {
                    let mut v = [0u64; 9];
                    v[1..9].copy_from_slice(outcomes);
                    v[0] = outcomes.iter().sum();
                    from_values(&v)
                };
                let a = make(&x);
                let b = make(&y);
                prop_assert!(a.balanced());
                prop_assert_eq!(a.generated, a.delivered + a.dropped());
                let mut sum = a;
                sum.absorb(&b);
                prop_assert!(sum.balanced());
            }

            // Near-max sums must not overflow: dropped() saturates,
            // balanced() and absorb() never panic or wrap.
            #[test]
            fn near_max_never_overflows(x in buckets(), y in buckets()) {
                let (a, b) = (from_values(&x), from_values(&y));
                let _ = a.dropped();
                let _ = a.balanced();
                let mut sum = a;
                sum.absorb(&b);
                let _ = sum.dropped();
                let _ = sum.balanced();
                for (i, &v) in sum.values().iter().enumerate() {
                    prop_assert!(
                        v >= x[i].max(y[i]),
                        "bucket {} shrank: {} < max({}, {})", i, v, x[i], y[i]
                    );
                }
            }
        }
    }
}
