//! The per-sim trace sink: zero-cost when off, bounded when on.

use crate::event::{SchedEvent, Stage, StageFilter, TraceEvent, WorkKind};
use crate::metrics::MetricsRegistry;

/// Default per-sim event-buffer capacity. Bounded so a traced full-scale
/// sweep cannot exhaust memory; overflow is counted, never silently lost.
pub const DEFAULT_EVENT_CAP: usize = 1 << 18;

/// Configuration for one trace sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Which stages to record as events.
    pub filter: StageFilter,
    /// Maximum events buffered per sim; later events only bump
    /// [`TraceReport::truncated`].
    pub cap: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            filter: StageFilter::all(),
            cap: DEFAULT_EVENT_CAP,
        }
    }
}

/// Everything a traced sim produced: the bounded event log, the overflow
/// count, and the metrics registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Recorded events in emission (simulation) order.
    pub events: Vec<TraceEvent>,
    /// Per-CPU scheduling events in dispatch order (recorded only when
    /// the filter selects `sched`; empty otherwise).
    pub sched: Vec<SchedEvent>,
    /// Events dropped after the buffer filled (deterministic for a given
    /// seed/config/cap).
    pub truncated: u64,
    /// Counters, gauges, histograms recorded alongside the events.
    pub metrics: MetricsRegistry,
}

/// Live state behind an enabled sink.
#[derive(Debug, Clone)]
pub struct TraceState {
    filter: StageFilter,
    cap: usize,
    events: Vec<TraceEvent>,
    sched: Vec<SchedEvent>,
    truncated: u64,
    /// Metrics registry; sims write through [`TraceSink::metrics_mut`].
    pub metrics: MetricsRegistry,
}

/// A sim's trace handle. `Off` is a single enum-discriminant check per
/// event site — the instrumented hot paths cost one predictable branch when
/// tracing is disabled.
#[derive(Debug, Clone, Default)]
pub enum TraceSink {
    /// Tracing disabled; every emit is a no-op.
    #[default]
    Off,
    /// Tracing enabled with bounded buffering.
    On(Box<TraceState>),
}

impl TraceSink {
    /// A disabled sink.
    pub fn off() -> Self {
        TraceSink::Off
    }

    /// An enabled sink with the given filter and cap.
    pub fn bounded(spec: TraceSpec) -> Self {
        TraceSink::On(Box::new(TraceState {
            filter: spec.filter,
            cap: spec.cap,
            events: Vec::with_capacity(spec.cap.min(4096)),
            sched: Vec::new(),
            truncated: 0,
            metrics: MetricsRegistry::new(),
        }))
    }

    /// Whether events/metrics are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, TraceSink::On(_))
    }

    /// Record one event (no-op when off or filtered out).
    #[inline]
    pub fn emit(&mut self, t_ns: u64, stage: Stage, seq: u64, bytes: u64, app: u16, count: u32) {
        if let TraceSink::On(state) = self {
            if state.filter.contains(stage) {
                if state.events.len() < state.cap {
                    state.events.push(TraceEvent {
                        t_ns,
                        stage,
                        seq,
                        bytes,
                        app,
                        count,
                    });
                } else {
                    state.truncated += 1;
                }
            }
        }
    }

    /// Record one CPU-scheduling event (no-op when off or when the
    /// filter does not select `sched`). Bounded by the same cap as the
    /// lifecycle log; overflow bumps [`TraceReport::truncated`].
    #[inline]
    pub fn emit_sched(&mut self, t_ns: u64, dur_ns: u64, cpu: u16, app: u16, kind: WorkKind) {
        if let TraceSink::On(state) = self {
            if state.filter.wants_sched() {
                if state.sched.len() < state.cap {
                    state.sched.push(SchedEvent {
                        t_ns,
                        dur_ns,
                        cpu,
                        app,
                        kind,
                    });
                } else {
                    state.truncated += 1;
                }
            }
        }
    }

    /// Whether per-CPU scheduling events are being recorded — sims hoist
    /// this check around dispatch-site instrumentation.
    #[inline]
    pub fn wants_sched(&self) -> bool {
        match self {
            TraceSink::Off => false,
            TraceSink::On(state) => state.filter.wants_sched(),
        }
    }

    /// Mutable access to the metrics registry, `None` when off. Callers
    /// hoist this single check around metric updates.
    #[inline]
    pub fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        match self {
            TraceSink::Off => None,
            TraceSink::On(state) => Some(&mut state.metrics),
        }
    }

    /// Consume the sink into its report (`None` when off).
    pub fn into_report(self) -> Option<TraceReport> {
        match self {
            TraceSink::Off => None,
            TraceSink::On(state) => Some(TraceReport {
                events: state.events,
                sched: state.sched,
                truncated: state.truncated,
                metrics: state.metrics,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{APP_NONE, SEQ_NONE};

    #[test]
    fn off_sink_records_nothing() {
        let mut sink = TraceSink::off();
        assert!(!sink.is_on());
        sink.emit(1, Stage::Wire, 0, 60, APP_NONE, 1);
        assert!(sink.metrics_mut().is_none());
        assert!(sink.into_report().is_none());
    }

    #[test]
    fn bounded_sink_caps_and_counts_overflow() {
        let mut sink = TraceSink::bounded(TraceSpec {
            filter: StageFilter::all(),
            cap: 2,
        });
        for i in 0..5 {
            sink.emit(i, Stage::Wire, i, 60, APP_NONE, 1);
        }
        let report = sink.into_report().unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.truncated, 3);
        assert_eq!(report.events[0].t_ns, 0);
        assert_eq!(report.events[1].t_ns, 1);
    }

    #[test]
    fn filter_drops_unselected_stages_without_truncation() {
        let mut sink = TraceSink::bounded(TraceSpec {
            filter: StageFilter::drops(),
            cap: 8,
        });
        sink.emit(1, Stage::Wire, 1, 60, APP_NONE, 1);
        sink.emit(2, Stage::NicDropRing, 2, 60, APP_NONE, 1);
        sink.emit(3, Stage::BusTransfer, SEQ_NONE, 1500, APP_NONE, 4);
        let report = sink.into_report().unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].stage, Stage::NicDropRing);
        assert_eq!(report.truncated, 0);
    }
}
