//! Packet-lifecycle trace events and the stage filter.

/// A point in a packet's life (or a batch/byte-level transfer) inside one
/// machine simulation.
///
/// The stages mirror the loss-localization analysis of Schneider 2005
/// (Ch. 5–6): a frame arrives on the wire, is admitted to (or dropped at)
/// the NIC ring, crosses the bus in an IRQ/DMA batch, passes the packet
/// filter, is stored in (or dropped at) the kernel buffer, is delivered to
/// the application, and — for recording workloads — eventually reaches the
/// disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Frame fully arrived at the NIC (end-of-reception on the wire).
    Wire = 0,
    /// Frame admitted to the NIC RX ring.
    NicEnqueue = 1,
    /// Frame lost: the PCI bus could not sustain the transfer rate.
    NicDropBus = 2,
    /// Frame lost: the NIC RX ring was full.
    NicDropRing = 3,
    /// An IRQ fired and a batch of ring slots was transferred to the host.
    BusTransfer = 4,
    /// The packet filter accepted the frame for one consumer.
    FilterAccept = 5,
    /// The packet filter rejected the frame for one consumer.
    FilterReject = 6,
    /// Frame stored in a kernel capture buffer (BPF store buffer or socket
    /// receive queue).
    KernelEnqueue = 7,
    /// Frame lost: the kernel capture buffer was full.
    KernelDropBuffer = 8,
    /// Frame lost: the shared packet pool was exhausted (PF_PACKET).
    KernelDropPool = 9,
    /// Frame processed by the application (end of the capture path).
    AppDeliver = 10,
    /// Dirty bytes written back to disk.
    DiskWrite = 11,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 12] = [
        Stage::Wire,
        Stage::NicEnqueue,
        Stage::NicDropBus,
        Stage::NicDropRing,
        Stage::BusTransfer,
        Stage::FilterAccept,
        Stage::FilterReject,
        Stage::KernelEnqueue,
        Stage::KernelDropBuffer,
        Stage::KernelDropPool,
        Stage::AppDeliver,
        Stage::DiskWrite,
    ];

    /// Stable snake_case name (used in exports and the `--trace` filter).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::NicEnqueue => "nic_enqueue",
            Stage::NicDropBus => "nic_drop_bus",
            Stage::NicDropRing => "nic_drop_ring",
            Stage::BusTransfer => "bus_transfer",
            Stage::FilterAccept => "filter_accept",
            Stage::FilterReject => "filter_reject",
            Stage::KernelEnqueue => "kernel_enqueue",
            Stage::KernelDropBuffer => "kernel_drop_buffer",
            Stage::KernelDropPool => "kernel_drop_pool",
            Stage::AppDeliver => "app_deliver",
            Stage::DiskWrite => "disk_write",
        }
    }

    /// Coarse category for trace viewers (`cat` in Chrome trace JSON).
    pub fn category(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::NicEnqueue => "nic",
            Stage::NicDropBus | Stage::NicDropRing => "drop",
            Stage::BusTransfer => "bus",
            Stage::FilterAccept | Stage::FilterReject => "filter",
            Stage::KernelEnqueue => "kernel",
            Stage::KernelDropBuffer | Stage::KernelDropPool => "drop",
            Stage::AppDeliver => "app",
            Stage::DiskWrite => "disk",
        }
    }

    /// True for the stages where a packet leaves the pipeline without being
    /// delivered.
    pub fn is_drop(self) -> bool {
        matches!(
            self,
            Stage::NicDropBus
                | Stage::NicDropRing
                | Stage::FilterReject
                | Stage::KernelDropBuffer
                | Stage::KernelDropPool
        )
    }
}

/// `seq` value for events that do not refer to a single packet
/// (batch transfers, disk writebacks).
pub const SEQ_NONE: u64 = u64::MAX;

/// `app` value for events not tied to one consumer.
pub const APP_NONE: u16 = u16::MAX;

/// One trace event. Compact and `Copy`: the hot path appends these to a
/// pre-sized `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation timestamp in nanoseconds.
    pub t_ns: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Generator sequence number of the packet, or [`SEQ_NONE`].
    pub seq: u64,
    /// Bytes involved (frame length, batch bytes, written bytes).
    pub bytes: u64,
    /// Consumer (application) index, or [`APP_NONE`].
    pub app: u16,
    /// Packets involved (1 for per-packet events, batch size for
    /// [`Stage::BusTransfer`], chunk size for writebacks).
    pub count: u32,
}

/// Bitmask over [`Stage`]s selecting which events a sink records.
///
/// Parsed from the `--trace PATH[:filter]` suffix: a comma-separated list
/// of stage names or group aliases (`all`, `drops`, `nic`, `bus`, `filter`,
/// `kernel`, `app`, `wire`, `disk`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFilter(u16);

impl Default for StageFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl StageFilter {
    /// Record every stage.
    pub fn all() -> Self {
        StageFilter((1u16 << Stage::ALL.len()) - 1)
    }

    /// Record nothing (metrics still accumulate).
    pub fn none() -> Self {
        StageFilter(0)
    }

    /// Only the packet-loss stages.
    pub fn drops() -> Self {
        let mut f = StageFilter::none();
        for s in Stage::ALL {
            if s.is_drop() {
                f.insert(s);
            }
        }
        f
    }

    /// Add one stage to the set.
    pub fn insert(&mut self, stage: Stage) {
        self.0 |= 1u16 << stage as u8;
    }

    /// Whether `stage` is recorded.
    #[inline]
    pub fn contains(&self, stage: Stage) -> bool {
        self.0 & (1u16 << stage as u8) != 0
    }

    /// Parse a comma-separated filter spec. Empty input means `all`.
    pub fn parse(spec: &str) -> Result<StageFilter, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(StageFilter::all());
        }
        let mut f = StageFilter::none();
        for part in spec.split(',') {
            let part = part.trim();
            match part {
                "all" => f = StageFilter::all(),
                "drops" => {
                    for s in Stage::ALL {
                        if s.is_drop() {
                            f.insert(s);
                        }
                    }
                }
                "wire" => f.insert(Stage::Wire),
                "nic" => {
                    f.insert(Stage::NicEnqueue);
                    f.insert(Stage::NicDropBus);
                    f.insert(Stage::NicDropRing);
                }
                "bus" => f.insert(Stage::BusTransfer),
                "filter" => {
                    f.insert(Stage::FilterAccept);
                    f.insert(Stage::FilterReject);
                }
                "kernel" => {
                    f.insert(Stage::KernelEnqueue);
                    f.insert(Stage::KernelDropBuffer);
                    f.insert(Stage::KernelDropPool);
                }
                "app" => f.insert(Stage::AppDeliver),
                "disk" => f.insert(Stage::DiskWrite),
                other => {
                    let stage = Stage::ALL.iter().find(|s| s.name() == other);
                    match stage {
                        Some(&s) => f.insert(s),
                        None => {
                            return Err(format!(
                                "unknown trace filter term '{other}' (expected a stage \
                                 name or one of: all, drops, wire, nic, bus, filter, \
                                 kernel, app, disk)"
                            ));
                        }
                    }
                }
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parse_groups_and_names() {
        let f = StageFilter::parse("drops").unwrap();
        assert!(f.contains(Stage::NicDropRing));
        assert!(f.contains(Stage::FilterReject));
        assert!(!f.contains(Stage::Wire));

        let f = StageFilter::parse("wire,app_deliver").unwrap();
        assert!(f.contains(Stage::Wire));
        assert!(f.contains(Stage::AppDeliver));
        assert!(!f.contains(Stage::NicEnqueue));

        assert_eq!(StageFilter::parse("").unwrap(), StageFilter::all());
        assert_eq!(StageFilter::parse("all").unwrap(), StageFilter::all());
        assert!(StageFilter::parse("bogus").is_err());
    }

    #[test]
    fn every_stage_round_trips_through_its_name() {
        for s in Stage::ALL {
            let f = StageFilter::parse(s.name()).unwrap();
            assert!(f.contains(s));
        }
    }
}
