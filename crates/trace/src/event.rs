//! Packet-lifecycle trace events and the stage filter.

/// A point in a packet's life (or a batch/byte-level transfer) inside one
/// machine simulation.
///
/// The stages mirror the loss-localization analysis of Schneider 2005
/// (Ch. 5–6): a frame arrives on the wire, is admitted to (or dropped at)
/// the NIC ring, crosses the bus in an IRQ/DMA batch, passes the packet
/// filter, is stored in (or dropped at) the kernel buffer, is delivered to
/// the application, and — for recording workloads — eventually reaches the
/// disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Frame fully arrived at the NIC (end-of-reception on the wire).
    Wire = 0,
    /// Frame admitted to the NIC RX ring.
    NicEnqueue = 1,
    /// Frame lost: the PCI bus could not sustain the transfer rate.
    NicDropBus = 2,
    /// Frame lost: the NIC RX ring was full.
    NicDropRing = 3,
    /// An IRQ fired and a batch of ring slots was transferred to the host.
    BusTransfer = 4,
    /// The packet filter accepted the frame for one consumer.
    FilterAccept = 5,
    /// The packet filter rejected the frame for one consumer.
    FilterReject = 6,
    /// Frame stored in a kernel capture buffer (BPF store buffer or socket
    /// receive queue).
    KernelEnqueue = 7,
    /// Frame lost: the kernel capture buffer was full.
    KernelDropBuffer = 8,
    /// Frame lost: the shared packet pool was exhausted (PF_PACKET).
    KernelDropPool = 9,
    /// Frame processed by the application (end of the capture path).
    AppDeliver = 10,
    /// Dirty bytes written back to disk.
    DiskWrite = 11,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 12] = [
        Stage::Wire,
        Stage::NicEnqueue,
        Stage::NicDropBus,
        Stage::NicDropRing,
        Stage::BusTransfer,
        Stage::FilterAccept,
        Stage::FilterReject,
        Stage::KernelEnqueue,
        Stage::KernelDropBuffer,
        Stage::KernelDropPool,
        Stage::AppDeliver,
        Stage::DiskWrite,
    ];

    /// Stable snake_case name (used in exports and the `--trace` filter).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::NicEnqueue => "nic_enqueue",
            Stage::NicDropBus => "nic_drop_bus",
            Stage::NicDropRing => "nic_drop_ring",
            Stage::BusTransfer => "bus_transfer",
            Stage::FilterAccept => "filter_accept",
            Stage::FilterReject => "filter_reject",
            Stage::KernelEnqueue => "kernel_enqueue",
            Stage::KernelDropBuffer => "kernel_drop_buffer",
            Stage::KernelDropPool => "kernel_drop_pool",
            Stage::AppDeliver => "app_deliver",
            Stage::DiskWrite => "disk_write",
        }
    }

    /// Coarse category for trace viewers (`cat` in Chrome trace JSON).
    pub fn category(self) -> &'static str {
        match self {
            Stage::Wire => "wire",
            Stage::NicEnqueue => "nic",
            Stage::NicDropBus | Stage::NicDropRing => "drop",
            Stage::BusTransfer => "bus",
            Stage::FilterAccept | Stage::FilterReject => "filter",
            Stage::KernelEnqueue => "kernel",
            Stage::KernelDropBuffer | Stage::KernelDropPool => "drop",
            Stage::AppDeliver => "app",
            Stage::DiskWrite => "disk",
        }
    }

    /// True for the stages where a packet leaves the pipeline without being
    /// delivered.
    pub fn is_drop(self) -> bool {
        matches!(
            self,
            Stage::NicDropBus
                | Stage::NicDropRing
                | Stage::FilterReject
                | Stage::KernelDropBuffer
                | Stage::KernelDropPool
        )
    }
}

/// `seq` value for events that do not refer to a single packet
/// (batch transfers, disk writebacks).
pub const SEQ_NONE: u64 = u64::MAX;

/// `app` value for events not tied to one consumer.
pub const APP_NONE: u16 = u16::MAX;

/// One trace event. Compact and `Copy`: the hot path appends these to a
/// pre-sized `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation timestamp in nanoseconds.
    pub t_ns: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Generator sequence number of the packet, or [`SEQ_NONE`].
    pub seq: u64,
    /// Bytes involved (frame length, batch bytes, written bytes).
    pub bytes: u64,
    /// Consumer (application) index, or [`APP_NONE`].
    pub app: u16,
    /// Packets involved (1 for per-packet events, batch size for
    /// [`Stage::BusTransfer`], chunk size for writebacks).
    pub count: u32,
}

/// The kinds of CPU work items the machine scheduler dispatches.
///
/// Every span a simulated CPU executes is one of these; [`SchedEvent`]s
/// tag each dispatched span so a `sched`-filtered trace shows which work
/// ran on which CPU at which sim-nanosecond — receive livelock becomes
/// directly visible as `kernel_batch` spans starving `app_*` spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Interrupt/softirq batch: ring drain, filter, kernel-buffer store.
    KernelBatch = 0,
    /// Disk write-back completion interrupt.
    DiskIrq = 1,
    /// Application read()/bulk-copyout syscall span (FreeBSD).
    AppRead = 2,
    /// Application per-packet processing chunk.
    AppChunk = 3,
    /// The gzip helper process consuming the capture pipe.
    Gzip = 4,
}

impl WorkKind {
    /// Every kind, in dispatch-priority order.
    pub const ALL: [WorkKind; 5] = [
        WorkKind::KernelBatch,
        WorkKind::DiskIrq,
        WorkKind::AppRead,
        WorkKind::AppChunk,
        WorkKind::Gzip,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            WorkKind::KernelBatch => "kernel_batch",
            WorkKind::DiskIrq => "disk_irq",
            WorkKind::AppRead => "app_read",
            WorkKind::AppChunk => "app_chunk",
            WorkKind::Gzip => "gzip",
        }
    }
}

/// One CPU-scheduling event: a work item occupied a CPU for a span.
///
/// Emitted by the machine scheduler at dispatch time when the sink's
/// filter selects `sched`; exported as Chrome-trace complete events
/// (`ph:"X"`) on per-CPU tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// Dispatch timestamp on the sim clock, nanoseconds.
    pub t_ns: u64,
    /// Wall-clock span the work item occupied its CPU (SMT stretch and
    /// any injected preemption delay included).
    pub dur_ns: u64,
    /// The CPU that executed the item.
    pub cpu: u16,
    /// Consumer (application) index for app work, or [`APP_NONE`].
    pub app: u16,
    /// What kind of work ran.
    pub kind: WorkKind,
}

/// Bitmask over [`Stage`]s selecting which events a sink records.
///
/// Parsed from the `--trace PATH[:filter]` suffix: a comma-separated list
/// of stage names or group aliases (`all`, `drops`, `nic`, `bus`, `filter`,
/// `kernel`, `app`, `wire`, `disk`), plus the opt-in `sched` term that
/// selects per-CPU scheduling events ([`SchedEvent`]). `sched` is
/// deliberately **outside** [`StageFilter::all`], so existing filters —
/// and the byte-exact exports they pin — are unchanged unless a trace
/// explicitly asks for scheduling data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFilter(u16);

/// Filter bit selecting [`SchedEvent`] recording (one past the last
/// [`Stage`] bit; not part of [`StageFilter::all`]).
const SCHED_BIT: u16 = 1 << Stage::ALL.len();

impl Default for StageFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl StageFilter {
    /// Record every stage.
    pub fn all() -> Self {
        StageFilter((1u16 << Stage::ALL.len()) - 1)
    }

    /// Record nothing (metrics still accumulate).
    pub fn none() -> Self {
        StageFilter(0)
    }

    /// Only the packet-loss stages.
    pub fn drops() -> Self {
        let mut f = StageFilter::none();
        for s in Stage::ALL {
            if s.is_drop() {
                f.insert(s);
            }
        }
        f
    }

    /// Only the per-CPU scheduling events (no lifecycle stages).
    pub fn sched() -> Self {
        StageFilter(SCHED_BIT)
    }

    /// Add one stage to the set.
    pub fn insert(&mut self, stage: Stage) {
        self.0 |= 1u16 << stage as u8;
    }

    /// Add the scheduling-event bit to the set.
    pub fn insert_sched(&mut self) {
        self.0 |= SCHED_BIT;
    }

    /// Whether per-CPU scheduling events are recorded.
    #[inline]
    pub fn wants_sched(&self) -> bool {
        self.0 & SCHED_BIT != 0
    }

    /// Whether `stage` is recorded.
    #[inline]
    pub fn contains(&self, stage: Stage) -> bool {
        self.0 & (1u16 << stage as u8) != 0
    }

    /// Parse a comma-separated filter spec. Empty input means `all`.
    pub fn parse(spec: &str) -> Result<StageFilter, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(StageFilter::all());
        }
        let mut f = StageFilter::none();
        for part in spec.split(',') {
            let part = part.trim();
            match part {
                // Merge (not replace): "sched,all" keeps the sched bit.
                "all" => {
                    for s in Stage::ALL {
                        f.insert(s);
                    }
                }
                "drops" => {
                    for s in Stage::ALL {
                        if s.is_drop() {
                            f.insert(s);
                        }
                    }
                }
                "wire" => f.insert(Stage::Wire),
                "nic" => {
                    f.insert(Stage::NicEnqueue);
                    f.insert(Stage::NicDropBus);
                    f.insert(Stage::NicDropRing);
                }
                "bus" => f.insert(Stage::BusTransfer),
                "filter" => {
                    f.insert(Stage::FilterAccept);
                    f.insert(Stage::FilterReject);
                }
                "kernel" => {
                    f.insert(Stage::KernelEnqueue);
                    f.insert(Stage::KernelDropBuffer);
                    f.insert(Stage::KernelDropPool);
                }
                "app" => f.insert(Stage::AppDeliver),
                "disk" => f.insert(Stage::DiskWrite),
                "sched" => f.insert_sched(),
                other => {
                    let stage = Stage::ALL.iter().find(|s| s.name() == other);
                    match stage {
                        Some(&s) => f.insert(s),
                        None => {
                            return Err(format!(
                                "unknown trace filter term '{other}' (expected a stage \
                                 name or one of: all, drops, wire, nic, bus, filter, \
                                 kernel, app, disk, sched)"
                            ));
                        }
                    }
                }
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parse_groups_and_names() {
        let f = StageFilter::parse("drops").unwrap();
        assert!(f.contains(Stage::NicDropRing));
        assert!(f.contains(Stage::FilterReject));
        assert!(!f.contains(Stage::Wire));

        let f = StageFilter::parse("wire,app_deliver").unwrap();
        assert!(f.contains(Stage::Wire));
        assert!(f.contains(Stage::AppDeliver));
        assert!(!f.contains(Stage::NicEnqueue));

        assert_eq!(StageFilter::parse("").unwrap(), StageFilter::all());
        assert_eq!(StageFilter::parse("all").unwrap(), StageFilter::all());
        assert!(StageFilter::parse("bogus").is_err());
    }

    #[test]
    fn every_stage_round_trips_through_its_name() {
        for s in Stage::ALL {
            let f = StageFilter::parse(s.name()).unwrap();
            assert!(f.contains(s));
        }
    }

    #[test]
    fn sched_is_opt_in_and_outside_all() {
        assert!(!StageFilter::all().wants_sched());
        assert!(!StageFilter::default().wants_sched());
        let f = StageFilter::parse("sched").unwrap();
        assert!(f.wants_sched());
        assert!(Stage::ALL.iter().all(|&s| !f.contains(s)));
        let f = StageFilter::parse("drops,sched").unwrap();
        assert!(f.wants_sched());
        assert!(f.contains(Stage::NicDropRing));
        assert_eq!(StageFilter::sched(), StageFilter::parse("sched").unwrap());
    }

    #[test]
    fn work_kind_names_are_unique() {
        let names: std::collections::BTreeSet<_> = WorkKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), WorkKind::ALL.len());
    }
}
