//! Property tests for the DES kernel: ordering, determinism, statistics.

use pcs_des::stats::{median, quantile, Accumulator};
use pcs_des::{EventQueue, Pcg32, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events pop in time order, FIFO within equal timestamps — i.e. the
    /// queue is a stable sort by time.
    #[test]
    fn queue_is_stable_time_sort(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable == tie-break by push order
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, expect);
    }

    /// Interleaved scheduling keeps causality: every popped timestamp is
    /// monotone non-decreasing.
    #[test]
    fn pops_monotone_under_interleaving(ops in proptest::collection::vec((0u64..500, any::<bool>()), 1..200)) {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for (delay, pop) in ops {
            let at = q.now() + SimDuration::from_nanos(delay);
            q.schedule(at, ());
            if pop {
                if let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// PRNG streams are reproducible and bounded draws respect bounds.
    #[test]
    fn rng_determinism(seed in any::<u64>(), stream in any::<u64>(), bound in 1u32..=u32::MAX) {
        let mut a = Pcg32::new(seed, stream);
        let mut b = Pcg32::new(seed, stream);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..50 {
            prop_assert!(a.gen_below(bound) < bound);
        }
    }

    /// Accumulator mean matches the naive mean.
    #[test]
    fn accumulator_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((acc.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert_eq!(acc.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(acc.min(), min);
        prop_assert_eq!(acc.max(), max);
    }

    /// Median and quantiles are order statistics: bounded by min/max and
    /// monotone in q.
    #[test]
    fn quantiles_are_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), q1 in 0f64..=1.0, q2 in 0f64..=1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let m = median(&xs);
        prop_assert!(m >= quantile(&xs, 0.0) - 1e-9 && m <= quantile(&xs, 1.0) + 1e-9);
    }

    /// Duration arithmetic: for_bits never undershoots the exact value.
    #[test]
    fn for_bits_rounds_up(bits in 1u64..1_000_000, rate in 1u64..10_000_000_000) {
        let d = SimDuration::for_bits(bits, rate);
        let exact = bits as f64 * 1e9 / rate as f64;
        prop_assert!(d.as_nanos() as f64 >= exact - 1e-6);
        prop_assert!((d.as_nanos() as f64) < exact + 1.0);
    }
}
