//! # pcs-des — deterministic discrete-event simulation kernel
//!
//! The foundation of the `pcapbench` reproduction of Schneider's
//! *"Performance evaluation of packet capturing systems for high-speed
//! networks"* (TU München, 2005). Every higher layer — hardware models,
//! operating-system capture stacks, the packet generator, the measurement
//! testbed — advances virtual time through the primitives in this crate:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time;
//! * [`EventQueue`] — a stable (FIFO-on-ties) pending-event set;
//! * [`RunQueue`] — a deterministic two-class (kernel/user) per-CPU run
//!   queue with strict priority and a bounded starvation-avoidance yield;
//! * [`Pcg32`] / [`SplitMix64`] — deterministic PRNG streams, so that a run
//!   seed fully determines the generated packet sequence (the paper's
//!   reproducibility requirement, §3.2);
//! * [`SegVec`] — an inline small-vector (spill-to-heap fallback) for the
//!   simulator's per-work-item segment lists;
//! * [`BufPool`] / [`PoolProbe`] — free-list buffer pools and their
//!   cross-thread statistics probe, the allocation-free hot path's
//!   memory supply;
//! * [`AdmissionCursor`] / [`ExpMemo`] / [`SizeMemo`] / [`BatchProbe`] —
//!   macro-batched event admission: lazy arrival scheduling, bit-exact
//!   cost-model memoization, and batching telemetry;
//! * [`FastHash`] — a deterministic, seed-free hasher for hot maps whose
//!   iteration order is never observed;
//! * [`stats`] — small statistics accumulators for result processing;
//! * [`fingerprint`] — explicit field-by-field configuration digests for
//!   memoization keys (no reliance on `Debug` renderings).
//!
//! The crate is intentionally free of I/O and of `std::time`: simulated time
//! never observes wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fingerprint;
pub mod hash;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod runq;
pub mod segvec;
pub mod stats;
pub mod time;

pub use batch::{AdmissionCursor, BatchProbe, BatchStats, ExpMemo, SizeMemo};
pub use fingerprint::{Fingerprint, Fingerprintable};
pub use hash::{FastHash, FastHasher};
pub use pool::{BufPool, PoolProbe, PoolStats};
pub use queue::EventQueue;
pub use rng::{Pcg32, SplitMix64};
pub use runq::{RunQueue, WorkClass};
pub use segvec::SegVec;
pub use time::{SimDuration, SimTime};
