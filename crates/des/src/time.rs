//! Virtual simulation time.
//!
//! All simulation time is kept as an integer number of **nanoseconds** since
//! the start of the run. Integer time makes event ordering exact and keeps
//! runs bit-for-bit reproducible, which the paper's methodology requires
//! (§3.2 "Reproducibility").

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// The time needed to move `bits` over a link of `bits_per_sec`.
    ///
    /// Rounds up so that back-to-back transmissions never overlap.
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs:
        // bits is bounded by a frame size (< 2^14), rate < 2^40.
        let num = (bits as u128) * 1_000_000_000u128;
        let per = bits_per_sec as u128;
        SimDuration(num.div_ceil(per) as u64)
    }

    /// The time needed to move `bytes` at a bandwidth of `bytes_per_sec`.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        Self::for_bits(bytes * 8, bytes_per_sec * 8)
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer count.
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        self.times(n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration(1_000_000_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
        assert_eq!(
            t.since(SimTime::from_micros(10)),
            SimDuration::from_micros(5)
        );
        // saturating behaviour
        assert_eq!(SimTime::from_micros(1).since(t), SimDuration::ZERO);
    }

    #[test]
    fn serialization_time_for_bits() {
        // 1500 byte frame on gigabit: 12 microseconds.
        let d = SimDuration::for_bits(1500 * 8, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(12));
        // Rounds up: 1 bit at 1 Gbit/s is 1 ns exactly.
        assert_eq!(SimDuration::for_bits(1, 1_000_000_000), SimDuration(1));
        // 3 bits at 2 bit/s = 1.5s -> rounds up to 1.5e9 ns exactly
        assert_eq!(SimDuration::for_bits(3, 2), SimDuration(1_500_000_000));
    }

    #[test]
    fn for_bytes_matches_bits() {
        assert_eq!(
            SimDuration::for_bytes(1000, 125_000_000),
            SimDuration::for_bits(8000, 1_000_000_000)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000_000));
    }
}
