//! An inline fixed-capacity small-vector with a spill-to-heap fallback.
//!
//! [`SegVec`] stores up to `N` elements inline (no heap allocation) and
//! transparently moves to a heap `Vec` when pushed past `N`. It exists
//! for the simulator's hot path, where per-work-item element counts are
//! tiny and known (CPU-state segments: one to three, at most four after
//! a fault split) but an occasional larger sequence must still work.
//!
//! The implementation is entirely safe code: the inline storage is a
//! `[T; N]` of `T::default()` placeholders, which is why `T: Copy +
//! Default` is required. Elements are never removed individually — the
//! container only grows, or is cleared wholesale — which keeps the
//! inline/spilled state machine trivial: once spilled, always spilled
//! (until [`SegVec::clear`]).

/// A small-vector storing up to `N` elements inline, spilling to the
/// heap past that.
#[derive(Clone)]
pub struct SegVec<T: Copy + Default, const N: usize> {
    /// Inline storage; `inline[..len]` are live while not spilled.
    inline: [T; N],
    /// Live element count (inline or spilled).
    len: usize,
    /// Heap fallback; non-empty exactly when spilled.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SegVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> SegVec<T, N> {
        SegVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// An empty vector pre-filled from `items` (inline when they fit).
    #[inline]
    pub fn from_slice(items: &[T]) -> SegVec<T, N> {
        let mut v = SegVec::new();
        for &item in items {
            v.push(item);
        }
        v
    }

    /// Append one element, spilling to the heap at the `N+1`th push.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.spill.is_empty() {
            if self.len < N {
                self.inline[self.len] = item;
                self.len += 1;
                return;
            }
            // Inline full: move everything to the heap in order.
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..self.len]);
        }
        self.spill.push(item);
        self.len += 1;
    }

    /// Live element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True while the elements live in the inline array (diagnostics and
    /// tests; callers never need to care).
    pub fn is_inline(&self) -> bool {
        self.spill.is_empty()
    }

    /// Drop all elements, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The live elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Iterate the live elements.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Iterate the live elements mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.as_mut_slice().iter_mut()
    }
}

impl<T: Copy + Default, const N: usize> Default for SegVec<T, N> {
    fn default() -> Self {
        SegVec::new()
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for SegVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SegVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for SegVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SegVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a mut SegVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SegVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SegVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SegVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_inline_and_len_zero() {
        let v: SegVec<u64, 4> = SegVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[] as &[u64]);
    }

    #[test]
    fn pushes_stay_inline_up_to_capacity() {
        let mut v: SegVec<u32, 4> = SegVec::new();
        for i in 0..4 {
            v.push(i);
            assert!(v.is_inline(), "push {i} must not spill");
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spill_boundary_preserves_order_and_content() {
        // The N+1th push is the exact inline→spill boundary.
        let mut v: SegVec<u32, 4> = SegVec::new();
        for i in 0..4 {
            v.push(i);
        }
        v.push(4);
        assert!(!v.is_inline(), "5th push into capacity 4 must spill");
        assert_eq!(v.len(), 5);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        // Later pushes stay spilled.
        v.push(5);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_capacity_spills_immediately() {
        let mut v: SegVec<u8, 0> = SegVec::new();
        v.push(9);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn iter_mut_covers_both_representations() {
        let mut v: SegVec<u64, 2> = SegVec::from_slice(&[1, 2]);
        for x in v.iter_mut() {
            *x *= 10;
        }
        assert_eq!(v.as_slice(), &[10, 20]);
        v.push(3); // spill
        for x in &mut v {
            *x += 1;
        }
        assert_eq!(v.as_slice(), &[11, 21, 4]);
    }

    #[test]
    fn clear_resets_to_inline_and_keeps_working() {
        let mut v: SegVec<u32, 2> = SegVec::from_slice(&[1, 2, 3]);
        assert!(!v.is_inline());
        v.clear();
        assert!(v.is_empty());
        assert!(v.is_inline());
        v.push(7);
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[7]);
    }

    #[test]
    fn deref_indexing_and_sum_work() {
        let v: SegVec<(u8, u64), 4> = SegVec::from_slice(&[(0, 10), (1, 20)]);
        assert_eq!(v[1].1, 20);
        let total: u64 = v.iter().map(|s| s.1).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn from_iterator_and_eq() {
        let a: SegVec<u32, 4> = (0..6).collect();
        let b: SegVec<u32, 4> = SegVec::from_slice(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "[0, 1, 2, 3, 4, 5]");
    }

    #[test]
    fn clone_preserves_content_across_the_boundary() {
        let mut v: SegVec<u32, 4> = SegVec::from_slice(&[1, 2, 3, 4]);
        let inline_clone = v.clone();
        assert_eq!(inline_clone.as_slice(), v.as_slice());
        v.push(5);
        let spilled_clone = v.clone();
        assert_eq!(spilled_clone.as_slice(), &[1, 2, 3, 4, 5]);
    }
}
