//! Small statistics helpers shared by the measurement crates.

/// Streaming accumulator for min / max / mean / variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// Histogram over `u64` values with power-of-two (log2) buckets.
///
/// Bucket 0 holds the value 0; bucket `i` (1 ≤ i ≤ 64) holds values in
/// `[2^(i-1), 2^i - 1]` (bucket 64's upper bound saturates at `u64::MAX`).
/// Recording is branch-free apart from the zero check, making it cheap
/// enough for per-packet instrumentation, and the fixed bucket layout keeps
/// rendered output byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: 0 for 0, `floor(log2(v)) + 1`
    /// otherwise.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` value range covered by bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index <= 64, "log histogram has buckets 0..=64");
        if index == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index == 64 {
                u64::MAX
            } else {
                (1u64 << index) - 1
            };
            (lo, hi)
        }
    }

    /// Add one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// `(bucket_lo, bucket_hi, count)` for every non-empty bucket, in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Number of linear sub-buckets per power-of-two range in a
/// [`QuantileDigest`] (as a power of two: 2^5 = 32 sub-buckets, bounding
/// the relative quantile error at 1/32 ≈ 3%).
const DIGEST_SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two range.
const DIGEST_SUBS: usize = 1 << DIGEST_SUB_BITS;

/// Total bucket count: the exact values `0..32`, then 32 sub-buckets for
/// each of the 59 power-of-two ranges `[2^5, 2^6) .. [2^63, 2^64)`.
const DIGEST_BUCKETS: usize = DIGEST_SUBS + (64 - DIGEST_SUB_BITS as usize) * DIGEST_SUBS;

/// A mergeable, order-independent quantile digest over `u64` values.
///
/// An HDR-histogram-style refinement of [`LogHistogram`]: each
/// power-of-two range is split into [`DIGEST_SUBS`] linear sub-buckets,
/// so any reported quantile is within one sub-bucket (≤ ~3% relative
/// error) of the exact order statistic — while the digest stays a fixed
/// array of integer counters. That buys the two properties a cross-run
/// ledger needs:
///
/// * **Exactly order-independent**: recording the same multiset of
///   values in any order — or recording disjoint parts into separate
///   digests and [`QuantileDigest::merge`]-ing them in any order —
///   produces identical bucket counts, so rendered quantiles are
///   byte-identical at any worker count or chunking.
/// * **Deterministically rendered**: quantiles are integer bucket lower
///   bounds selected by integer rank (no float interpolation), clamped
///   to the observed `[min, max]`, so no platform float variance can
///   leak into the output.
#[derive(Clone, PartialEq, Eq)]
pub struct QuantileDigest {
    counts: Box<[u64; DIGEST_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileDigest {
    fn default() -> Self {
        QuantileDigest {
            counts: Box::new([0; DIGEST_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for QuantileDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The bucket array is 2k counters; summarize it instead.
        f.debug_struct("QuantileDigest")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl QuantileDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    fn index(value: u64) -> usize {
        if value < DIGEST_SUBS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // value in [2^exp, 2^(exp+1))
        let sub = (value >> (exp - DIGEST_SUB_BITS)) as usize - DIGEST_SUBS;
        DIGEST_SUBS + (exp - DIGEST_SUB_BITS) as usize * DIGEST_SUBS + sub
    }

    /// The smallest value that lands in bucket `index`.
    fn bucket_lo(index: usize) -> u64 {
        if index < DIGEST_SUBS {
            return index as u64;
        }
        let block = (index - DIGEST_SUBS) / DIGEST_SUBS;
        let sub = (index - DIGEST_SUBS) % DIGEST_SUBS;
        let exp = block as u32 + DIGEST_SUB_BITS;
        (DIGEST_SUBS as u64 + sub as u64) << (exp - DIGEST_SUB_BITS)
    }

    /// Add one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile as an integer: the lower bound of the sub-bucket
    /// holding the rank-`ceil(q·count)` order statistic, clamped to the
    /// observed `[min, max]`. Returns 0 when empty. A pure function of
    /// the bucket counts, so merged digests report identical quantiles
    /// regardless of recording or merge order.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Integer rank: ceil(q * count), clamped into [1, count]. The
        // product is exact for every count below 2^53.
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The last-ranked observation is the recorded maximum itself.
        if rank == self.count {
            return self.max();
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lo(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// The ledger's standard latency summary: p50 / p90 / p99 / p99.9.
    pub fn percentiles(&self) -> [u64; 4] {
        [
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
            self.quantile(0.999),
        ]
    }

    /// Merge another digest into this one (bucket-wise sum — exactly
    /// associative and commutative).
    pub fn merge(&mut self, other: &QuantileDigest) {
        for (b, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Returns 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
        // population stddev is 2; sample stddev = sqrt(32/7)
        assert!((a.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
        assert_eq!(a.stddev(), 0.0);
    }

    #[test]
    fn accumulator_single_observation() {
        // n = 1: mean/min/max echo the observation, variance is undefined
        // so stddev must report 0 (not NaN).
        let mut a = Accumulator::new();
        a.add(42.5);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 42.5);
        assert_eq!(a.min(), 42.5);
        assert_eq!(a.max(), 42.5);
        assert_eq!(a.stddev(), 0.0);
        assert!(!a.stddev().is_nan());
    }

    #[test]
    fn accumulator_zero_observations_have_no_nan() {
        let a = Accumulator::new();
        assert_eq!(a.count(), 0);
        for v in [a.mean(), a.min(), a.max(), a.stddev()] {
            assert_eq!(v, 0.0);
            assert!(!v.is_nan());
        }
    }

    #[test]
    fn accumulator_two_observations_variance() {
        // First n where the sample variance becomes defined.
        let mut a = Accumulator::new();
        a.add(1.0);
        a.add(3.0);
        // sample variance = ((1-2)^2 + (3-2)^2) / (2-1) = 2
        assert!((a.stddev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_bucket_edges() {
        // 0 is its own bucket; each power of two starts a new bucket and
        // the value just below it closes the previous one.
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(7), 3);
        assert_eq!(LogHistogram::bucket_index(8), 4);
        for i in 1..=63u32 {
            let p = 1u64 << i;
            assert_eq!(LogHistogram::bucket_index(p), i as usize + 1);
            assert_eq!(LogHistogram::bucket_index(p - 1), i as usize);
        }
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn log_histogram_bucket_bounds_partition_u64() {
        assert_eq!(LogHistogram::bucket_bounds(0), (0, 0));
        assert_eq!(LogHistogram::bucket_bounds(1), (1, 1));
        assert_eq!(LogHistogram::bucket_bounds(2), (2, 3));
        assert_eq!(LogHistogram::bucket_bounds(64).1, u64::MAX);
        // Consecutive buckets tile the value space with no gap or overlap.
        for i in 1..=63usize {
            let (_, hi) = LogHistogram::bucket_bounds(i);
            let (lo_next, _) = LogHistogram::bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next);
        }
        // Every value's bucket actually contains it.
        for v in [0u64, 1, 2, 3, 4, 255, 256, 257, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn log_histogram_record_and_stats() {
        let mut h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [0u64, 1, 5, 5, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1035);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.bucket_count(0), 1); // the 0
        assert_eq!(h.bucket_count(1), 1); // the 1
        assert_eq!(h.bucket_count(3), 2); // both 5s in [4,7]
        assert_eq!(h.bucket_count(11), 1); // 1024 in [1024,2047]
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 0, 1), (1, 1, 1), (4, 7, 2), (1024, 2047, 1)]
        );
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 303);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn digest_buckets_partition_and_contain() {
        // Every value's bucket contains it, and bucket lower bounds are
        // strictly increasing (no gap or overlap in coverage).
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = QuantileDigest::index(v);
            assert!(i < DIGEST_BUCKETS, "index {i} for {v}");
            let lo = QuantileDigest::bucket_lo(i);
            assert!(lo <= v, "bucket lo {lo} above value {v}");
            if i + 1 < DIGEST_BUCKETS {
                assert!(
                    v < QuantileDigest::bucket_lo(i + 1),
                    "value {v} at or past next bucket"
                );
            }
        }
        for i in 1..DIGEST_BUCKETS {
            assert!(QuantileDigest::bucket_lo(i) > QuantileDigest::bucket_lo(i - 1));
            // bucket_lo is a left inverse of index.
            assert_eq!(QuantileDigest::index(QuantileDigest::bucket_lo(i)), i);
        }
        assert_eq!(QuantileDigest::index(u64::MAX), DIGEST_BUCKETS - 1);
    }

    #[test]
    fn digest_quantiles_are_tight() {
        let mut d = QuantileDigest::new();
        for v in 1..=1000u64 {
            d.record(v);
        }
        assert_eq!(d.count(), 1000);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 1000);
        assert_eq!(d.quantile(0.0), 1);
        assert_eq!(d.quantile(1.0), 1000);
        // Relative error bounded by one sub-bucket (~3%).
        let p50 = d.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.04, "p50 = {p50}");
        let p99 = d.quantile(0.99) as f64;
        assert!((p99 - 990.0).abs() / 990.0 < 0.04, "p99 = {p99}");
        let [a, b, c, dd] = d.percentiles();
        assert!(a <= b && b <= c && c <= dd, "monotone percentiles");
    }

    #[test]
    fn digest_empty_and_single() {
        let d = QuantileDigest::new();
        assert_eq!(d.count(), 0);
        assert_eq!(d.min(), 0);
        assert_eq!(d.max(), 0);
        assert_eq!(d.quantile(0.5), 0);
        let mut one = QuantileDigest::new();
        one.record(42);
        assert_eq!(one.percentiles(), [42, 42, 42, 42]);
    }

    #[test]
    fn digest_merge_is_order_independent() {
        // The same multiset recorded in any order, or split across
        // digests merged in any order, is bit-identical.
        let values: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(2654435761) >> 16)
            .collect();
        let mut all = QuantileDigest::new();
        for &v in &values {
            all.record(v);
        }
        let mut reversed = QuantileDigest::new();
        for &v in values.iter().rev() {
            reversed.record(v);
        }
        assert_eq!(all, reversed);
        let (lo, hi) = values.split_at(137);
        let (mut a, mut b) = (QuantileDigest::new(), QuantileDigest::new());
        lo.iter().for_each(|&v| a.record(v));
        hi.iter().for_each(|&v| b.record(v));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, all);
        assert_eq!(ab.percentiles(), all.percentiles());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert!((quantile(&xs, 0.25) - 25.0).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Any multiset, split at any points into up to four shards
            // merged in any of two orders, is bit-identical to recording
            // it straight — the property the cross-run ledger relies on
            // to stay byte-stable at any --jobs/--chunk split.
            #[test]
            fn digest_merge_is_partition_and_order_independent(
                values in proptest::collection::vec(any::<u64>(), 0..300),
                cut_a in 0usize..=300,
                cut_b in 0usize..=300,
                forward in any::<bool>(),
            ) {
                let mut whole = QuantileDigest::new();
                values.iter().for_each(|&v| whole.record(v));
                let (a, b) = (cut_a.min(values.len()), cut_b.min(values.len()));
                let (lo, hi) = (a.min(b), a.max(b));
                let mut shards =
                    [QuantileDigest::new(), QuantileDigest::new(), QuantileDigest::new()];
                values[..lo].iter().for_each(|&v| shards[0].record(v));
                values[lo..hi].iter().for_each(|&v| shards[1].record(v));
                values[hi..].iter().for_each(|&v| shards[2].record(v));
                let mut merged = QuantileDigest::new();
                if forward {
                    shards.iter().for_each(|s| merged.merge(s));
                } else {
                    shards.iter().rev().for_each(|s| merged.merge(s));
                }
                prop_assert_eq!(&merged, &whole);
                prop_assert_eq!(merged.percentiles(), whole.percentiles());
            }

            // Percentiles are ordered and bounded by the exact extremes.
            #[test]
            fn digest_percentiles_are_monotone_and_bounded(
                values in proptest::collection::vec(any::<u64>(), 1..300),
            ) {
                let mut d = QuantileDigest::new();
                values.iter().for_each(|&v| d.record(v));
                let [p50, p90, p99, p999] = d.percentiles();
                prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
                prop_assert!(p999 <= d.max());
                prop_assert_eq!(d.quantile(1.0), d.max());
                prop_assert_eq!(d.count(), values.len() as u64);
                prop_assert_eq!(d.sum(), values.iter().copied().fold(0u64, u64::saturating_add));
            }
        }
    }
}
