//! Small statistics helpers shared by the measurement crates.

/// Streaming accumulator for min / max / mean / variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Returns 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
        // population stddev is 2; sample stddev = sqrt(32/7)
        assert!((a.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
        assert_eq!(a.stddev(), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert!((quantile(&xs, 0.25) - 25.0).abs() < 1e-9);
    }
}
