//! Small statistics helpers shared by the measurement crates.

/// Streaming accumulator for min / max / mean / variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// Histogram over `u64` values with power-of-two (log2) buckets.
///
/// Bucket 0 holds the value 0; bucket `i` (1 ≤ i ≤ 64) holds values in
/// `[2^(i-1), 2^i - 1]` (bucket 64's upper bound saturates at `u64::MAX`).
/// Recording is branch-free apart from the zero check, making it cheap
/// enough for per-packet instrumentation, and the fixed bucket layout keeps
/// rendered output byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: 0 for 0, `floor(log2(v)) + 1`
    /// otherwise.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[lo, hi]` value range covered by bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index <= 64, "log histogram has buckets 0..=64");
        if index == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index == 64 {
                u64::MAX
            } else {
                (1u64 << index) - 1
            };
            (lo, hi)
        }
    }

    /// Add one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// `(bucket_lo, bucket_hi, count)` for every non-empty bucket, in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Returns 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
        // population stddev is 2; sample stddev = sqrt(32/7)
        assert!((a.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
        assert_eq!(a.stddev(), 0.0);
    }

    #[test]
    fn accumulator_single_observation() {
        // n = 1: mean/min/max echo the observation, variance is undefined
        // so stddev must report 0 (not NaN).
        let mut a = Accumulator::new();
        a.add(42.5);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 42.5);
        assert_eq!(a.min(), 42.5);
        assert_eq!(a.max(), 42.5);
        assert_eq!(a.stddev(), 0.0);
        assert!(!a.stddev().is_nan());
    }

    #[test]
    fn accumulator_zero_observations_have_no_nan() {
        let a = Accumulator::new();
        assert_eq!(a.count(), 0);
        for v in [a.mean(), a.min(), a.max(), a.stddev()] {
            assert_eq!(v, 0.0);
            assert!(!v.is_nan());
        }
    }

    #[test]
    fn accumulator_two_observations_variance() {
        // First n where the sample variance becomes defined.
        let mut a = Accumulator::new();
        a.add(1.0);
        a.add(3.0);
        // sample variance = ((1-2)^2 + (3-2)^2) / (2-1) = 2
        assert!((a.stddev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_bucket_edges() {
        // 0 is its own bucket; each power of two starts a new bucket and
        // the value just below it closes the previous one.
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(7), 3);
        assert_eq!(LogHistogram::bucket_index(8), 4);
        for i in 1..=63u32 {
            let p = 1u64 << i;
            assert_eq!(LogHistogram::bucket_index(p), i as usize + 1);
            assert_eq!(LogHistogram::bucket_index(p - 1), i as usize);
        }
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn log_histogram_bucket_bounds_partition_u64() {
        assert_eq!(LogHistogram::bucket_bounds(0), (0, 0));
        assert_eq!(LogHistogram::bucket_bounds(1), (1, 1));
        assert_eq!(LogHistogram::bucket_bounds(2), (2, 3));
        assert_eq!(LogHistogram::bucket_bounds(64).1, u64::MAX);
        // Consecutive buckets tile the value space with no gap or overlap.
        for i in 1..=63usize {
            let (_, hi) = LogHistogram::bucket_bounds(i);
            let (lo_next, _) = LogHistogram::bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next);
        }
        // Every value's bucket actually contains it.
        for v in [0u64, 1, 2, 3, 4, 255, 256, 257, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn log_histogram_record_and_stats() {
        let mut h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [0u64, 1, 5, 5, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1035);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.bucket_count(0), 1); // the 0
        assert_eq!(h.bucket_count(1), 1); // the 1
        assert_eq!(h.bucket_count(3), 2); // both 5s in [4,7]
        assert_eq!(h.bucket_count(11), 1); // 1024 in [1024,2047]
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 0, 1), (1, 1, 1), (4, 7, 2), (1024, 2047, 1)]
        );
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 303);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert!((quantile(&xs, 0.25) - 25.0).abs() < 1e-9);
    }
}
