//! Free-list buffer pools for allocation-free hot paths.
//!
//! A [`BufPool`] hands out `Vec<T>` buffers and takes them back when
//! their user is done: after a short warm-up the same few buffers
//! circulate forever and the steady-state path performs no heap
//! allocation per transaction. The pool is plain single-threaded state
//! (a simulation owns its pools); cross-thread aggregation of pool
//! statistics goes through the atomic [`PoolProbe`].
//!
//! Pools can be disabled ([`BufPool::set_enabled`]) without changing
//! any observable behavior — a disabled pool allocates fresh buffers
//! and drops returned ones, which is exactly what the pre-pool code
//! did. Counters keep running either way, so an A/B comparison sees
//! identical `gets` on both sides.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters of one pool (or the sum over several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub gets: u64,
    /// Hand-outs that had to allocate because the free list was empty.
    /// With pooling enabled this is also the pool's high-water mark:
    /// buffers are only created on a miss and never destroyed.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
}

impl PoolStats {
    /// Fold another pool's counters into this sum.
    pub fn absorb(&mut self, other: PoolStats) {
        self.gets += other.gets;
        self.misses += other.misses;
        self.recycled += other.recycled;
    }
}

/// A free list of `Vec<T>` buffers.
#[derive(Debug)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
    enabled: bool,
    gets: u64,
    misses: u64,
    recycled: u64,
}

impl<T> BufPool<T> {
    /// An empty pool.
    pub fn new(enabled: bool) -> BufPool<T> {
        BufPool {
            free: Vec::new(),
            enabled,
            gets: 0,
            misses: 0,
            recycled: 0,
        }
    }

    /// Turn recycling on or off. Disabling drops the free list; the pool
    /// then behaves exactly like plain `Vec::new()` allocation.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.free = Vec::new();
        }
    }

    /// Hand out an empty buffer: recycled when one is free, freshly
    /// allocated (a *miss*) otherwise.
    pub fn get(&mut self) -> Vec<T> {
        self.gets += 1;
        match self.free.pop() {
            Some(v) => v,
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the free list. The buffer is cleared;
    /// zero-capacity buffers (never-used `Vec::new()` placeholders) are
    /// ignored so they don't dilute the free list.
    pub fn put(&mut self, mut v: Vec<T>) {
        if !self.enabled || v.capacity() == 0 {
            return;
        }
        v.clear();
        self.recycled += 1;
        self.free.push(v);
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            gets: self.gets,
            misses: self.misses,
            recycled: self.recycled,
        }
    }
}

/// Thread-safe aggregation point for [`PoolStats`].
///
/// A simulation publishes its pools' final counters into a shared probe
/// when it finishes; the sweep engine sums probes across cells and the
/// CLI prints them under `--profile`. The probe is deliberately *not*
/// part of any simulation report: pool traffic describes execution, not
/// simulated behavior, and reports must stay byte-identical whether
/// pooling is on or off.
#[derive(Debug, Default)]
pub struct PoolProbe {
    gets: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    /// Highest per-sim miss count seen — the largest buffer footprint
    /// any one simulation needed.
    high_water: AtomicU64,
}

impl PoolProbe {
    /// A zeroed probe.
    pub fn new() -> PoolProbe {
        PoolProbe::default()
    }

    /// Fold one simulation's summed pool counters into the probe.
    pub fn publish(&self, stats: PoolStats) {
        self.gets.fetch_add(stats.gets, Ordering::Relaxed);
        self.misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.recycled.fetch_add(stats.recycled, Ordering::Relaxed);
        self.high_water.fetch_max(stats.misses, Ordering::Relaxed);
    }

    /// Total buffers handed out across published simulations.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Total hand-outs that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total buffers returned for reuse.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// The largest single-simulation miss count (pool high-water mark).
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_capacity() {
        let mut pool: BufPool<u64> = BufPool::new(true);
        let mut a = pool.get();
        a.extend(0..100);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back empty");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!(
            pool.stats(),
            PoolStats {
                gets: 2,
                misses: 1,
                recycled: 1
            }
        );
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool: BufPool<u8> = BufPool::new(true);
        pool.put(Vec::new());
        assert_eq!(pool.stats().recycled, 0);
        // The next get still misses: nothing useful was stored.
        let _ = pool.get();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn disabled_pool_always_misses_but_counts_gets() {
        let mut pool: BufPool<u8> = BufPool::new(false);
        let mut v = pool.get();
        v.push(1);
        pool.put(v);
        let _ = pool.get();
        let s = pool.stats();
        assert_eq!(s.gets, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.recycled, 0);
    }

    #[test]
    fn steady_state_misses_stabilize() {
        // One buffer in flight at a time: exactly one miss regardless of
        // how many transactions run.
        let mut pool: BufPool<u32> = BufPool::new(true);
        for i in 0..1_000u32 {
            let mut v = pool.get();
            v.push(i);
            pool.put(v);
        }
        let s = pool.stats();
        assert_eq!(s.gets, 1_000);
        assert_eq!(s.misses, 1, "steady state must not allocate");
    }

    #[test]
    fn probe_sums_and_tracks_high_water() {
        let probe = PoolProbe::new();
        probe.publish(PoolStats {
            gets: 10,
            misses: 3,
            recycled: 7,
        });
        probe.publish(PoolStats {
            gets: 5,
            misses: 1,
            recycled: 4,
        });
        assert_eq!(probe.gets(), 15);
        assert_eq!(probe.misses(), 4);
        assert_eq!(probe.recycled(), 11);
        assert_eq!(probe.high_water(), 3);
    }
}
