//! A deterministic, seed-free fast hasher for the simulator's hot maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed with a random
//! seed and costs tens of nanoseconds per small key — both properties
//! are wrong for the hot path: the Linux packet-pool refcount map does
//! three hash operations per packet, and the simulator must behave
//! identically from run to run. [`FastHash`] is an FxHash-style
//! multiply-rotate-xor mixer: fixed constants, no per-process seed, a
//! handful of arithmetic instructions per word.
//!
//! **When to use it:** only for maps whose *iteration order is never
//! observed* (lookup/insert/remove by key), keyed by trusted, internal
//! values. Simulation results must not depend on bucket layout; every
//! use in this workspace goes through keyed access only. Do not use it
//! for anything fed by untrusted input — there is no DoS resistance.

use std::hash::{BuildHasher, Hasher};

/// The Firefox/rustc FxHash multiplier (a 64-bit prime-ish constant
/// chosen for good avalanche under `rotate ^ mul`).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// [`BuildHasher`] for [`FastHasher`]: stateless, so every map built
/// from it hashes identically in every run and process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastHash;

impl BuildHasher for FastHash {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher { state: 0 }
    }
}

/// An FxHash-style streaming hasher (see [`FastHash`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the byte count in so "ab" ++ "\0" cannot alias "ab".
            self.mix(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        FastHash.hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("capture"), hash_of("capture"));
        // Pinned value: the hash must never change across versions or
        // processes (no random seed anywhere).
        assert_eq!(hash_of(0u64), 0);
        assert_ne!(hash_of(1u64), hash_of(2u64));
    }

    #[test]
    fn distinguishes_nearby_u64_keys() {
        // Sequence numbers are consecutive; the mixer must spread them.
        let hashes: Vec<u64> = (0u64..1000).map(hash_of).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collisions on 0..1000");
    }

    #[test]
    fn byte_slices_do_not_alias_on_padding() {
        assert_ne!(hash_of([0u8; 7].as_slice()), hash_of([0u8; 8].as_slice()));
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
    }

    #[test]
    fn works_as_a_hashmap_hasher() {
        let mut m: HashMap<u64, u32, FastHash> = HashMap::default();
        for i in 0..100 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.get(&7), Some(&14));
        m.remove(&7);
        assert_eq!(m.get(&7), None);
        assert_eq!(m.len(), 99);
    }
}
