//! Deterministic configuration fingerprints.
//!
//! The run cache keys measurement cells by their full configuration. A
//! `Debug`-rendering key is fragile: any type that ever gains a pointer,
//! a map with unstable iteration order, or a float formatting change
//! silently changes (or worse, collides) the key. This module provides an
//! explicit field-by-field alternative: every configuration type writes
//! its fields into a [`Fingerprint`] through the [`Fingerprintable`]
//! trait, and the writer folds them into two independent 64-bit FNV-1a
//! streams (a 128-bit key, collision-safe for any realistic cell count).
//!
//! Encoding rules, chosen so distinct configurations cannot alias:
//! * integers are written as fixed-width little-endian bytes;
//! * floats are written as their IEEE-754 bit patterns (no formatting);
//! * strings and byte slices are length-prefixed;
//! * every sequence writes its length before its elements;
//! * enum variants and optional fields write a discriminant byte first.

/// Two independent 64-bit FNV-1a streams fed with the same bytes.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    h1: u64,
    h2: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_BASIS_1: u64 = 0xcbf2_9ce4_8422_2325;
/// Second basis: an arbitrary odd constant far from the FNV offset.
const FNV_BASIS_2: u64 = 0x6c62_272e_07bb_0142;

impl Fingerprint {
    /// A fresh fingerprint at the FNV offset bases.
    pub fn new() -> Fingerprint {
        Fingerprint {
            h1: FNV_BASIS_1,
            h2: FNV_BASIS_2,
        }
    }

    /// Fold raw bytes into both streams (no length prefix; use
    /// [`Fingerprint::bytes`] for variable-length data).
    pub fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h1 = (self.h1 ^ b as u64).wrapping_mul(FNV_PRIME);
            self.h2 = (self.h2 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// A length-prefixed byte slice.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.len(bytes.len());
        self.raw(bytes);
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// A `u8`.
    pub fn u8(&mut self, v: u8) {
        self.raw(&[v]);
    }

    /// A `u16`, fixed-width little-endian.
    pub fn u16(&mut self, v: u16) {
        self.raw(&v.to_le_bytes());
    }

    /// A `u32`, fixed-width little-endian.
    pub fn u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }

    /// A `u64`, fixed-width little-endian.
    pub fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }

    /// A sequence length (or any `usize`).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// An `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// An enum-variant or option discriminant.
    pub fn tag(&mut self, v: u8) {
        self.u8(v);
    }

    /// An optional value: a presence byte, then the value if present.
    pub fn option<T: Fingerprintable>(&mut self, v: &Option<T>) {
        match v {
            None => self.tag(0),
            Some(x) => {
                self.tag(1);
                x.fingerprint(self);
            }
        }
    }

    /// A length-prefixed sequence of fingerprintable values.
    pub fn seq<T: Fingerprintable>(&mut self, items: &[T]) {
        self.len(items.len());
        for item in items {
            item.fingerprint(self);
        }
    }

    /// The 128-bit digest as two independent 64-bit hashes.
    pub fn finish(&self) -> (u64, u64) {
        (self.h1, self.h2)
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

/// A type whose full identity-relevant state can be written into a
/// [`Fingerprint`], field by field.
pub trait Fingerprintable {
    /// Write every identity-relevant field into `fp`.
    fn fingerprint(&self, fp: &mut Fingerprint);
}

impl Fingerprintable for u8 {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u8(*self);
    }
}

impl Fingerprintable for u32 {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u32(*self);
    }
}

impl Fingerprintable for u64 {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u64(*self);
    }
}

impl Fingerprintable for f64 {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.f64(*self);
    }
}

impl Fingerprintable for u16 {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.u16(*self);
    }
}

impl Fingerprintable for bool {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.bool(*self);
    }
}

impl<A: Fingerprintable, B: Fingerprintable> Fingerprintable for (A, B) {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        self.0.fingerprint(fp);
        self.1.fingerprint(fp);
    }
}

impl<T: Fingerprintable> Fingerprintable for Option<T> {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.option(self);
    }
}

impl<T: Fingerprintable + ?Sized> Fingerprintable for &T {
    fn fingerprint(&self, fp: &mut Fingerprint) {
        (**self).fingerprint(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(f: impl FnOnce(&mut Fingerprint)) -> (u64, u64) {
        let mut fp = Fingerprint::new();
        f(&mut fp);
        fp.finish()
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = digest(|fp| {
            fp.u32(1);
            fp.u32(2);
        });
        let b = digest(|fp| {
            fp.u32(1);
            fp.u32(2);
        });
        let c = digest(|fp| {
            fp.u32(2);
            fp.u32(1);
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        // "ab" + "c" must differ from "a" + "bc".
        let a = digest(|fp| {
            fp.str("ab");
            fp.str("c");
        });
        let b = digest(|fp| {
            fp.str("a");
            fp.str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn fixed_width_integers_do_not_alias() {
        // u8(1),u8(0) vs u16(1): the encodings differ in width, and an
        // explicit check that the two digests differ.
        let a = digest(|fp| fp.u16(1));
        let b = digest(|fp| {
            fp.u8(1);
            fp.u8(0);
        });
        assert_eq!(a, b, "u16 is exactly its two LE bytes");
        let c = digest(|fp| fp.u32(1));
        assert_ne!(a, c, "different widths write different byte counts");
    }

    #[test]
    fn floats_hash_bit_patterns() {
        let zero = digest(|fp| fp.f64(0.0));
        let negzero = digest(|fp| fp.f64(-0.0));
        assert_ne!(zero, negzero, "bit patterns, not numeric equality");
        let nan1 = digest(|fp| fp.f64(f64::NAN));
        let nan2 = digest(|fp| fp.f64(f64::NAN));
        assert_eq!(nan1, nan2, "the same NaN bit pattern hashes equally");
    }

    #[test]
    fn options_and_sequences_are_unambiguous() {
        let none_then_one = digest(|fp| {
            fp.option::<u32>(&None);
            fp.option(&Some(7u32));
        });
        let one_then_none = digest(|fp| {
            fp.option(&Some(7u32));
            fp.option::<u32>(&None);
        });
        assert_ne!(none_then_one, one_then_none);
        let split = digest(|fp| {
            fp.seq(&[1u32, 2]);
            fp.seq(&[3u32]);
        });
        let merged = digest(|fp| {
            fp.seq(&[1u32, 2, 3]);
            fp.seq::<u32>(&[]);
        });
        assert_ne!(split, merged);
    }

    #[test]
    fn option_impl_matches_the_writer_method() {
        let via_method = digest(|fp| fp.option(&Some(9.5f64)));
        let via_impl = digest(|fp| Some(9.5f64).fingerprint(fp));
        assert_eq!(via_method, via_impl);
        let none_method = digest(|fp| fp.option::<f64>(&None));
        let none_impl = digest(|fp| Option::<f64>::None.fingerprint(fp));
        assert_eq!(none_method, none_impl);
        assert_ne!(via_impl, none_impl);
    }

    #[test]
    fn reference_impl_is_transparent() {
        let direct = digest(|fp| 42u64.fingerprint(fp));
        let through_ref = digest(|fp| Fingerprintable::fingerprint(&&42u64, fp));
        assert_eq!(direct, through_ref);
    }

    #[test]
    fn both_streams_are_independent() {
        let (h1, h2) = digest(|fp| fp.str("cell"));
        assert_ne!(h1, h2);
    }
}
