//! A two-class per-CPU run queue with strict kernel priority and a
//! bounded starvation-avoidance yield.
//!
//! [`RunQueue`] is the generic scheduling primitive behind the machine
//! simulator's CPUs: kernel work (interrupt and stack processing) runs
//! ahead of user work, but after a configurable number of back-to-back
//! kernel items the next slot is granted to queued user work — so
//! interrupt pressure crowds applications out *gradually* rather than
//! absolutely, which is exactly the receive-livelock shape of Mogul &
//! Ramakrishnan that the thesis reproduces (§2.2.1). Both classes are
//! FIFO internally, so picking is fully deterministic.

use std::collections::VecDeque;

/// The scheduling class of a queued work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkClass {
    /// Interrupt/kernel work: strict priority, subject to the yield cap.
    Kernel,
    /// User (application) work: runs when kernel work is absent or yields.
    User,
}

/// A deterministic two-class FIFO run queue for one CPU.
#[derive(Debug, Clone)]
pub struct RunQueue<W> {
    kernel: VecDeque<W>,
    user: VecDeque<W>,
    /// Kernel work items picked back to back since the last user slot.
    consecutive_kernel: u32,
}

impl<W> Default for RunQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> RunQueue<W> {
    /// An empty run queue.
    pub fn new() -> RunQueue<W> {
        RunQueue {
            kernel: VecDeque::new(),
            user: VecDeque::new(),
            consecutive_kernel: 0,
        }
    }

    /// Enqueue `work` at the tail of its class queue.
    pub fn push(&mut self, class: WorkClass, work: W) {
        match class {
            WorkClass::Kernel => self.kernel.push_back(work),
            WorkClass::User => self.user.push_back(work),
        }
    }

    /// Pending kernel-class items.
    pub fn kernel_len(&self) -> usize {
        self.kernel.len()
    }

    /// Pending user-class items.
    pub fn user_len(&self) -> usize {
        self.user.len()
    }

    /// True when neither class has pending work.
    pub fn is_empty(&self) -> bool {
        self.kernel.is_empty() && self.user.is_empty()
    }

    /// Fast path for the push-then-pick pattern: when both queues are
    /// empty, an incoming item of `class` would be picked immediately by
    /// the very next [`RunQueue::pick`], whatever `kernel_slots` is.
    /// This applies exactly the yield-counter update that push + pick
    /// would (kernel extends the streak, user resets it) and returns
    /// `true`, letting the caller dispatch the item without moving it
    /// through the queue. Returns `false` — with no state change — when
    /// anything is queued, in which case the caller must take the full
    /// push + pick path.
    pub fn admit_direct(&mut self, class: WorkClass) -> bool {
        if !self.is_empty() {
            return false;
        }
        match class {
            // pick(): a kernel item from a sole-occupant queue is never
            // yielded past (no user work waiting), so the streak grows.
            WorkClass::Kernel => self.consecutive_kernel += 1,
            // pick(): the kernel queue is empty, so the streak resets
            // and the user item runs.
            WorkClass::User => self.consecutive_kernel = 0,
        }
        true
    }

    /// Pick the next work item under the strict-priority-with-yield
    /// policy: kernel work first, except that after `kernel_slots`
    /// consecutive kernel picks a queued user item (if any) gets the
    /// slot. Returns `None` when both queues are empty.
    pub fn pick(&mut self, kernel_slots: u32) -> Option<W> {
        let yield_to_user = self.consecutive_kernel >= kernel_slots && !self.user.is_empty();
        if !yield_to_user {
            match self.kernel.pop_front() {
                Some(w) => {
                    self.consecutive_kernel += 1;
                    Some(w)
                }
                None => {
                    self.consecutive_kernel = 0;
                    self.user.pop_front()
                }
            }
        } else {
            self.consecutive_kernel = 0;
            self.user.pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_work_has_strict_priority() {
        let mut q = RunQueue::new();
        q.push(WorkClass::User, "u1");
        q.push(WorkClass::Kernel, "k1");
        q.push(WorkClass::Kernel, "k2");
        assert_eq!(q.pick(8), Some("k1"));
        assert_eq!(q.pick(8), Some("k2"));
        assert_eq!(q.pick(8), Some("u1"));
        assert_eq!(q.pick(8), None);
    }

    #[test]
    fn user_work_gets_every_nth_slot_under_pressure() {
        let mut q = RunQueue::new();
        for i in 0..10 {
            q.push(WorkClass::Kernel, format!("k{i}"));
        }
        q.push(WorkClass::User, "u0".to_string());
        let order: Vec<String> = std::iter::from_fn(|| q.pick(3)).collect();
        // Three kernel slots, then the user yield, then the rest.
        assert_eq!(order[..4], ["k0", "k1", "k2", "u0"]);
        assert_eq!(order.len(), 11);
    }

    #[test]
    fn consecutive_counter_resets_when_kernel_queue_drains() {
        let mut q = RunQueue::new();
        q.push(WorkClass::Kernel, 1);
        assert_eq!(q.pick(8), Some(1));
        // Kernel queue empty: a user pick resets the streak.
        q.push(WorkClass::User, 2);
        assert_eq!(q.pick(8), Some(2));
        for i in 0..8 {
            q.push(WorkClass::Kernel, 10 + i);
        }
        q.push(WorkClass::User, 99);
        // Fresh streak: all 8 kernel slots run before the user yield.
        let order: Vec<i32> = std::iter::from_fn(|| q.pick(8)).collect();
        assert_eq!(order, vec![10, 11, 12, 13, 14, 15, 16, 17, 99]);
    }

    #[test]
    fn admit_direct_matches_push_then_pick() {
        // For every (queue-empty, streak, class) combination the fast
        // path must leave the yield counter exactly where push + pick
        // would, and must refuse whenever anything is queued.
        for streak in [0u32, 3, 7, 8, 20] {
            for class in [WorkClass::Kernel, WorkClass::User] {
                let mut fast: RunQueue<u32> = RunQueue::new();
                let mut slow: RunQueue<u32> = RunQueue::new();
                fast.consecutive_kernel = streak;
                slow.consecutive_kernel = streak;
                assert!(fast.admit_direct(class));
                slow.push(class, 1);
                assert_eq!(slow.pick(8), Some(1));
                assert_eq!(fast.consecutive_kernel, slow.consecutive_kernel);
            }
        }
        // Non-empty queue: no state change, caller must use push + pick.
        let mut q: RunQueue<u32> = RunQueue::new();
        q.push(WorkClass::User, 1);
        q.consecutive_kernel = 5;
        assert!(!q.admit_direct(WorkClass::Kernel));
        assert_eq!(q.consecutive_kernel, 5);
        assert_eq!(q.user_len(), 1);
    }

    #[test]
    fn lengths_track_both_classes() {
        let mut q: RunQueue<u32> = RunQueue::new();
        assert!(q.is_empty());
        q.push(WorkClass::Kernel, 1);
        q.push(WorkClass::User, 2);
        q.push(WorkClass::User, 3);
        assert_eq!(q.kernel_len(), 1);
        assert_eq!(q.user_len(), 2);
        assert!(!q.is_empty());
    }
}
