//! The pending-event set of the discrete-event simulator.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs with **stable
//! FIFO ordering** for events scheduled at the same instant: two events with
//! equal timestamps pop in the order they were pushed. Stability is what
//! makes runs reproducible — a plain binary heap would break ties by
//! allocation order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    /// `(time, seq)` packed as `time << 64 | seq`: lexicographic order
    /// over the pair collapses to one integer comparison, which the heap
    /// performs O(log n) times per operation. `seq` is a strictly
    /// increasing u64, so the packing never aliases.
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(time: SimTime, seq: u64) -> u128 {
        ((time.as_nanos() as u128) << 64) | seq as u128
    }

    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (and among equal times, the lowest sequence number) on top.
        other.key.cmp(&self.key)
    }
}

/// A time-ordered pending-event set.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Create an empty queue whose heap can hold `cap` events before
    /// reallocating. Simulations that know their in-flight bound (e.g.
    /// ring slots + CPUs + a few timers) pre-size here and never touch
    /// the allocator from the hot loop.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Restore the pristine `new()` state — empty heap, clock at zero,
    /// sequence counter rewound — while keeping the heap's allocation,
    /// so a queue can be reused across simulation runs.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Events the heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — scheduling into the past is always
    /// a simulation bug and silently reordering it would corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "attempt to schedule event at {} before current time {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Entry::<E>::key(at, seq),
            event,
        });
    }

    /// Remove and return the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let time = entry.time();
        debug_assert!(time >= self.now);
        self.now = time;
        Some((time, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (the clock keeps its value).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Reserve the next sequence number without queueing anything.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Pack a (time, seq) pair into a comparable key.
    pub fn admission_key(at: SimTime, seq: u64) -> u128 {
        ((at.as_nanos() as u128) << 64) | seq as u128
    }

    /// Key of the earliest pending heap event.
    pub fn peek_key(&self) -> Option<u128> {
        self.heap.peek().map(|e| e.key)
    }

    /// Advance the clock to `at` without popping (cursor admission).
    pub fn advance_to(&mut self, at: SimTime) {
        debug_assert!(at >= self.now);
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(3), "c");
        q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 1);
        q.schedule(SimTime::from_micros(10), 10);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_micros(1), 1));
        // Schedule something between now and the remaining event.
        q.schedule(q.now() + SimDuration::from_micros(3), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![4, 10]);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
