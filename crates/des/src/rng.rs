//! Deterministic pseudo-random number generation.
//!
//! The measurement methodology demands *reproducible* packet sequences
//! (§3.2): rerunning a measurement with the same seed must produce the exact
//! same stream of packet sizes and event outcomes. We therefore use our own
//! small, well-understood generators instead of thread-local OS entropy:
//!
//! * [`SplitMix64`] — used to derive independent seeds for per-component
//!   streams from a single run seed;
//! * [`Pcg32`] — PCG-XSH-RR 64/32, the workhorse generator used by every
//!   simulation component.
//!
//! The kernel's `net_random()` used by the original pktgen enhancement plays
//! the same role in the paper (Appendix A.2.3).

/// SplitMix64: a tiny splittable generator used for seed derivation.
///
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new seed-derivation stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32: small, fast, statistically strong, and fully
/// deterministic across platforms.
///
/// Reference: O'Neill, "PCG: A Family of Simple Fast Space-Efficient
/// Statistically Good Algorithms for Random Number Generation" (2014).
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULTIPLIER: u64 = 6364136223846793005;

    /// Create a generator from a seed and a stream id. Distinct stream ids
    /// yield statistically independent sequences even for equal seeds.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive a child generator; children with different `tag`s are
    /// independent. Useful to hand each simulation component its own stream.
    pub fn derive(&self, tag: u64) -> Pcg32 {
        let mut sm = SplitMix64::new(self.state ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = sm.next_u64();
        let stream = sm.next_u64();
        Pcg32::new(seed, stream)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)` using Lemire-style rejection to avoid
    /// modulo bias. `bound` must be non-zero.
    pub fn gen_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Rejection sampling: threshold is 2^32 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u32::MAX {
            return self.next_u32();
        }
        lo + self.gen_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival processes (the paper contrasts these
    /// with self-similar traffic in §2.5).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg_reference_behaviour_is_stable() {
        // Lock in the sequence: these values act as a cross-version
        // reproducibility guarantee for every experiment in the repo.
        let mut rng = Pcg32::new(42, 54);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut rng2 = Pcg32::new(42, 54);
        let again: Vec<u32> = (0..4).map(|_| rng2.next_u32()).collect();
        assert_eq!(first, again);
        // Different stream differs.
        let mut rng3 = Pcg32::new(42, 55);
        assert_ne!(first[0], rng3.next_u32());
    }

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_below_bounds() {
        let mut rng = Pcg32::new(1, 1);
        for bound in [1u32, 2, 3, 10, 1000, u32::MAX] {
            for _ in 0..100 {
                assert!(rng.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_inclusive_covers_endpoints() {
        let mut rng = Pcg32::new(9, 3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            match rng.gen_range_inclusive(5, 8) {
                5 => seen_lo = true,
                8 => seen_hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(3, 14);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = Pcg32::new(2026, 7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = Pcg32::new(11, 13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "exp mean {mean} too far from 3.0");
    }

    #[test]
    fn derive_produces_independent_streams() {
        let base = Pcg32::new(5, 5);
        let mut a = base.derive(1);
        let mut b = base.derive(2);
        let mut a2 = base.derive(1);
        assert_eq!(a.next_u64(), a2.next_u64());
        // Streams should differ in at least the first few outputs.
        let avals: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let bvals: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(avals, bvals);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::new(77, 8);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
