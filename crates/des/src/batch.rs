//! Macro-batched event admission: the lazy-arrival cursor, bit-exact
//! cost-model memo tables, and batching telemetry.
//!
//! The dominant event class of a packet-capture simulation is the wire
//! arrival — one event per packet. Scheduling each of them through the
//! binary heap up front means every packet pays two O(log n) heap
//! operations plus an event-struct move before any stage work happens.
//! [`AdmissionCursor`] removes that cost without changing a single
//! observable byte: the *next* arrival is held outside the heap under
//! the exact `(time, seq)` key it would have carried inside it
//! ([`crate::EventQueue::reserve_seq`] allocates the sequence number at
//! the very same program point `schedule` would have), and the main
//! loop admits it only when it precedes everything actually queued.
//! The pending-event set thus holds O(1) arrival entries regardless of
//! stream length — the simulator's own NAPI: batch amortization applied
//! to the engine that models batch amortization.
//!
//! The memo tables ([`ExpMemo`], [`SizeMemo`]) cache pure arithmetic
//! (EMA smoothing factors, size-keyed per-packet cost sums) keyed by the
//! exact input bits. Because `f(bits) == f(bits)` on every IEEE-754
//! platform, a memo hit returns bit-for-bit what recomputation would —
//! runs with memoization disabled (`PCS_NO_BATCH=1`) are byte-identical.
//!
//! [`BatchStats`]/[`BatchProbe`] mirror the buffer-pool telemetry
//! ([`crate::PoolStats`]/[`crate::PoolProbe`]): counters describing how
//! the engine executed, published after a run, never part of any
//! simulation report.

use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// A one-slot lazy-admission cursor: the next deferred event, held
/// outside the pending-event heap under its reserved `(time, seq)` key.
///
/// The key must come from [`crate::EventQueue::reserve_seq`] packed via
/// [`crate::EventQueue::admission_key`] *at the program point where the
/// event would otherwise have been scheduled* — that is what keeps
/// same-instant tie-breaking identical to the heap path.
#[derive(Debug, Default)]
pub struct AdmissionCursor<T> {
    slot: Option<(u128, T)>,
}

impl<T> AdmissionCursor<T> {
    /// An empty cursor.
    pub fn new() -> AdmissionCursor<T> {
        AdmissionCursor { slot: None }
    }

    /// True when no event is deferred.
    pub fn is_empty(&self) -> bool {
        self.slot.is_none()
    }

    /// Defer `item` under `key`. The cursor holds one event; stashing
    /// over an occupied slot is a logic error.
    pub fn stash(&mut self, key: u128, item: T) {
        debug_assert!(self.slot.is_none(), "admission cursor already occupied");
        self.slot = Some((key, item));
    }

    /// Whether the deferred event precedes the earliest heap event
    /// (`heap_key` as returned by [`crate::EventQueue::peek_key`]).
    /// Strict `<` is exact, not conservative: keys embed unique sequence
    /// numbers, so two keys never compare equal, and the deferred
    /// event's seq was reserved when it was stashed — any heap entry
    /// with the same timestamp but an earlier seq must pop first,
    /// exactly as if both sat in the heap.
    pub fn precedes(&self, heap_key: Option<u128>) -> bool {
        match (&self.slot, heap_key) {
            (Some((key, _)), Some(hk)) => *key < hk,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Take the deferred event, unpacking its admission time.
    pub fn take(&mut self) -> Option<(SimTime, T)> {
        self.slot
            .take()
            .map(|(key, item)| (SimTime::from_nanos((key >> 64) as u64), item))
    }
}

/// A one-entry bit-exact memo for an expensive `f64 -> f64` function
/// (the EMA smoothing factors `exp(-dt/τ)` recomputed per packet).
///
/// Keyed by the input's exact bit pattern, so a hit returns precisely
/// the bits recomputation would produce. One entry suffices because the
/// dominant workloads are constant-gap streams: `dt` repeats for
/// thousands of consecutive packets, then changes once.
#[derive(Debug)]
pub struct ExpMemo {
    enabled: bool,
    primed: bool,
    last_bits: u64,
    last_val: f64,
    hits: u64,
    misses: u64,
}

impl ExpMemo {
    /// An empty memo; when `enabled` is false every lookup recomputes
    /// (the `PCS_NO_BATCH=1` differential-testing path).
    pub fn new(enabled: bool) -> ExpMemo {
        ExpMemo {
            enabled,
            primed: false,
            last_bits: 0,
            last_val: 0.0,
            hits: 0,
            misses: 0,
        }
    }

    /// Enable or disable memoization (disabling clears the entry).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.primed = false;
        }
    }

    /// `compute(x)`, served from the memo when `x` has the same bit
    /// pattern as the previous call.
    #[inline]
    pub fn get(&mut self, x: f64, compute: impl FnOnce(f64) -> f64) -> f64 {
        if !self.enabled {
            return compute(x);
        }
        let bits = x.to_bits();
        if self.primed && bits == self.last_bits {
            self.hits += 1;
            return self.last_val;
        }
        let v = compute(x);
        self.misses += 1;
        self.primed = true;
        self.last_bits = bits;
        self.last_val = v;
        v
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that recomputed (and re-primed the entry).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Beyond this many distinct keys the table stops growing and extra
/// keys recompute every time (still counted as misses). Real workloads
/// carry a handful of packet-size/filter-path classes, not hundreds.
const SIZE_MEMO_CAP: usize = 32;

/// A small size-keyed memo for pure `u64 -> u64` cost arithmetic (e.g.
/// the per-packet tap + filter nanoseconds, keyed by the filter path
/// length). Linear scan over at most [`SIZE_MEMO_CAP`] entries: repeated
/// keys hit on the first few probes, which beats hashing for the
/// cardinalities involved.
#[derive(Debug)]
pub struct SizeMemo {
    enabled: bool,
    entries: Vec<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl SizeMemo {
    /// An empty memo; when `enabled` is false every lookup recomputes.
    pub fn new(enabled: bool) -> SizeMemo {
        SizeMemo {
            enabled,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Enable or disable memoization (disabling clears the table).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.entries = Vec::new();
        }
    }

    /// `compute()`, served from the memo when `key` was seen before.
    /// `compute` must be a pure function of `key` for the run.
    #[inline]
    pub fn get(&mut self, key: u64, compute: impl FnOnce() -> u64) -> u64 {
        if !self.enabled {
            return compute();
        }
        if let Some(&(_, v)) = self.entries.iter().find(|(k, _)| *k == key) {
            self.hits += 1;
            return v;
        }
        let v = compute();
        self.misses += 1;
        if self.entries.len() < SIZE_MEMO_CAP {
            self.entries.push((key, v));
        }
        v
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that recomputed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Cumulative batching counters of one run (or a sum over several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Coalesced admission runs entered (each starts with one arrival).
    pub runs: u64,
    /// Arrivals admitted *beyond* the first of their run — the packets
    /// that skipped the main-loop round trip entirely.
    pub coalesced: u64,
    /// Longest single coalesced run, in arrivals.
    pub max_run: u64,
    /// EMA smoothing-factor memo hits / misses.
    pub alpha_hits: u64,
    /// See [`BatchStats::alpha_hits`].
    pub alpha_misses: u64,
    /// Size-keyed cost memo hits / misses.
    pub size_hits: u64,
    /// See [`BatchStats::size_hits`].
    pub size_misses: u64,
}

impl BatchStats {
    /// Record one coalesced admission run of `len` arrivals.
    pub fn note_run(&mut self, len: u64) {
        self.runs += 1;
        self.coalesced += len.saturating_sub(1);
        self.max_run = self.max_run.max(len);
    }

    /// Fold another run's counters into this sum.
    pub fn absorb(&mut self, other: BatchStats) {
        self.runs += other.runs;
        self.coalesced += other.coalesced;
        self.max_run = self.max_run.max(other.max_run);
        self.alpha_hits += other.alpha_hits;
        self.alpha_misses += other.alpha_misses;
        self.size_hits += other.size_hits;
        self.size_misses += other.size_misses;
    }
}

/// Thread-safe aggregation point for [`BatchStats`], mirroring
/// [`crate::PoolProbe`]: simulations publish their final counters here;
/// the sweep engine sums probes across cells and the CLI surfaces them
/// under `--profile`. Deliberately *not* part of any simulation report —
/// batching describes execution, and reports must stay byte-identical
/// whether it is on or off.
#[derive(Debug, Default)]
pub struct BatchProbe {
    sims_batched: AtomicU64,
    sims_unbatched: AtomicU64,
    runs: AtomicU64,
    coalesced: AtomicU64,
    max_run: AtomicU64,
    alpha_hits: AtomicU64,
    alpha_misses: AtomicU64,
    size_hits: AtomicU64,
    size_misses: AtomicU64,
}

impl BatchProbe {
    /// A zeroed probe.
    pub fn new() -> BatchProbe {
        BatchProbe::default()
    }

    /// Fold one simulation's counters into the probe. `batched` records
    /// whether the sim ran with macro-batching enabled — the config bit
    /// the ledger's profile block reports.
    pub fn publish(&self, batched: bool, stats: BatchStats) {
        if batched {
            self.sims_batched.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sims_unbatched.fetch_add(1, Ordering::Relaxed);
        }
        self.runs.fetch_add(stats.runs, Ordering::Relaxed);
        self.coalesced.fetch_add(stats.coalesced, Ordering::Relaxed);
        self.max_run.fetch_max(stats.max_run, Ordering::Relaxed);
        self.alpha_hits
            .fetch_add(stats.alpha_hits, Ordering::Relaxed);
        self.alpha_misses
            .fetch_add(stats.alpha_misses, Ordering::Relaxed);
        self.size_hits.fetch_add(stats.size_hits, Ordering::Relaxed);
        self.size_misses
            .fetch_add(stats.size_misses, Ordering::Relaxed);
    }

    /// Simulations that ran with macro-batching enabled.
    pub fn sims_batched(&self) -> u64 {
        self.sims_batched.load(Ordering::Relaxed)
    }

    /// Simulations that ran with macro-batching disabled.
    pub fn sims_unbatched(&self) -> u64 {
        self.sims_unbatched.load(Ordering::Relaxed)
    }

    /// Total coalesced admission runs.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Total arrivals admitted beyond the first of their run.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Longest single coalesced run seen by any published sim.
    pub fn max_run(&self) -> u64 {
        self.max_run.load(Ordering::Relaxed)
    }

    /// Summed EMA-memo hits.
    pub fn alpha_hits(&self) -> u64 {
        self.alpha_hits.load(Ordering::Relaxed)
    }

    /// Summed EMA-memo misses.
    pub fn alpha_misses(&self) -> u64 {
        self.alpha_misses.load(Ordering::Relaxed)
    }

    /// Summed size-memo hits.
    pub fn size_hits(&self) -> u64 {
        self.size_hits.load(Ordering::Relaxed)
    }

    /// Summed size-memo misses.
    pub fn size_misses(&self) -> u64 {
        self.size_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    #[test]
    fn cursor_orders_exactly_like_the_heap() {
        // Reference: everything through the heap.
        let mut heap: EventQueue<&str> = EventQueue::new();
        heap.schedule(SimTime::from_nanos(10), "arrival");
        heap.schedule(SimTime::from_nanos(10), "cpu-free");
        heap.schedule(SimTime::from_nanos(5), "early");
        let reference: Vec<&str> = std::iter::from_fn(|| heap.pop().map(|(_, e)| e)).collect();

        // Cursor path: the arrival reserves its seq at the same program
        // point but waits outside the heap.
        let mut q: EventQueue<&str> = EventQueue::new();
        let mut cursor = AdmissionCursor::new();
        let seq = q.reserve_seq();
        cursor.stash(
            EventQueue::<&str>::admission_key(SimTime::from_nanos(10), seq),
            "arrival",
        );
        q.schedule(SimTime::from_nanos(10), "cpu-free");
        q.schedule(SimTime::from_nanos(5), "early");
        let mut order = Vec::new();
        loop {
            if cursor.precedes(q.peek_key()) {
                let (t, e) = cursor.take().unwrap();
                q.advance_to(t);
                order.push(e);
            } else {
                match q.pop() {
                    Some((_, e)) => order.push(e),
                    None => break,
                }
            }
        }
        assert_eq!(order, reference);
    }

    #[test]
    fn cursor_same_instant_tiebreak_matches_seq_order() {
        // A heap event scheduled *before* the cursor reservation at the
        // same instant must win; one scheduled after must lose.
        let t = SimTime::from_nanos(7);
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(t, 1); // seq 0
        let mut cursor = AdmissionCursor::new();
        let seq = q.reserve_seq(); // seq 1
        cursor.stash(EventQueue::<u32>::admission_key(t, seq), 2);
        q.schedule(t, 3); // seq 2
        assert!(!cursor.precedes(q.peek_key()), "seq 0 beats the cursor");
        assert_eq!(q.pop(), Some((t, 1)));
        assert!(cursor.precedes(q.peek_key()), "cursor beats seq 2");
        assert_eq!(cursor.take().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop(), Some((t, 3)));
    }

    #[test]
    fn cursor_empty_and_take() {
        let mut c: AdmissionCursor<u8> = AdmissionCursor::new();
        assert!(c.is_empty());
        assert!(!c.precedes(None));
        assert_eq!(c.take(), None);
        c.stash(
            EventQueue::<u8>::admission_key(SimTime::from_nanos(3), 0),
            9,
        );
        assert!(!c.is_empty());
        assert!(c.precedes(None));
        assert_eq!(c.take(), Some((SimTime::from_nanos(3), 9)));
        assert!(c.is_empty());
    }

    #[test]
    fn exp_memo_is_bit_exact_and_counts() {
        let f = |x: f64| (-x / 2e6).exp();
        let mut m = ExpMemo::new(true);
        let a = m.get(25_000.0, f);
        let b = m.get(25_000.0, f);
        assert_eq!(a.to_bits(), f(25_000.0).to_bits());
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!((m.hits(), m.misses()), (1, 1));
        let c = m.get(30_000.0, f);
        assert_eq!(c.to_bits(), f(30_000.0).to_bits());
        assert_eq!((m.hits(), m.misses()), (1, 2));
    }

    #[test]
    fn exp_memo_disabled_recomputes_silently() {
        let mut m = ExpMemo::new(false);
        let f = |x: f64| x * 2.0;
        assert_eq!(m.get(3.0, f), 6.0);
        assert_eq!(m.get(3.0, f), 6.0);
        assert_eq!((m.hits(), m.misses()), (0, 0));
    }

    #[test]
    fn size_memo_caches_and_caps() {
        let mut m = SizeMemo::new(true);
        assert_eq!(m.get(659, || 100), 100);
        assert_eq!(m.get(659, || panic!("must hit")), 100);
        assert_eq!((m.hits(), m.misses()), (1, 1));
        // Overflow the table: extra keys recompute but still answer.
        for k in 0..(SIZE_MEMO_CAP as u64 + 10) {
            assert_eq!(m.get(1000 + k, || k), k);
        }
        for k in 0..(SIZE_MEMO_CAP as u64 + 10) {
            assert_eq!(m.get(1000 + k, || k), k);
        }
        assert!(m.misses() > SIZE_MEMO_CAP as u64);
    }

    #[test]
    fn batch_stats_note_and_absorb() {
        let mut s = BatchStats::default();
        s.note_run(1);
        s.note_run(64);
        assert_eq!((s.runs, s.coalesced, s.max_run), (2, 63, 64));
        let mut t = BatchStats {
            alpha_hits: 5,
            ..BatchStats::default()
        };
        t.note_run(8);
        s.absorb(t);
        assert_eq!(
            (s.runs, s.coalesced, s.max_run, s.alpha_hits),
            (3, 70, 64, 5)
        );
    }

    #[test]
    fn probe_sums_and_tracks_config() {
        let p = BatchProbe::new();
        p.publish(
            true,
            BatchStats {
                runs: 10,
                coalesced: 90,
                max_run: 32,
                alpha_hits: 80,
                alpha_misses: 20,
                size_hits: 99,
                size_misses: 1,
            },
        );
        p.publish(false, BatchStats::default());
        assert_eq!(p.sims_batched(), 1);
        assert_eq!(p.sims_unbatched(), 1);
        assert_eq!(p.runs(), 10);
        assert_eq!(p.coalesced(), 90);
        assert_eq!(p.max_run(), 32);
        assert_eq!(p.alpha_hits(), 80);
        assert_eq!(p.alpha_misses(), 20);
        assert_eq!(p.size_hits(), 99);
        assert_eq!(p.size_misses(), 1);
    }
}
