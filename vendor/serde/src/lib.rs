//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access; nothing in this workspace
//! serializes through serde at runtime (the derives only decorate model
//! types for downstream users). This stub keeps those annotations
//! compiling: the traits are blanket-implemented for every type and the
//! `derive` feature re-exports no-op derive macros.

/// Marker stand-in for `serde::Serialize`, blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`, blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
