//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real serde cannot be vendored. Nothing in the workspace serializes
//! through serde at runtime — the derives only decorate model types — so
//! the stand-in derives expand to nothing and the sibling `serde` stub
//! provides blanket trait impls instead.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the `serde` stub blanket-implements the
/// trait, so the derive has nothing to emit.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; see [`derive_serialize`].
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
