//! Collection strategies: `vec` and `btree_map`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections (inclusive lower, exclusive
/// upper).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below_usize(self.hi - self.lo)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap<K, V>` with approximately `size` entries
/// (duplicate keys collapse, as in the real crate).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        (0..n)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::new(4);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        assert_eq!(vec(any::<u8>(), 3).generate(&mut rng).len(), 3);
    }

    #[test]
    fn btree_map_generates_bounded() {
        let mut rng = TestRng::new(5);
        let s = btree_map(0u32..50, 0u64..10, 1..8);
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 8);
            assert!(m.keys().all(|&k| k < 50));
        }
    }
}
