//! The [`Strategy`] trait and its combinators (no shrinking).

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values for which `f` returns false (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, W> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> W,
{
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below_usize(self.options.len());
        self.options[i].generate(rng)
    }
}

/// A `Vec` of strategies generates a `Vec` of one value each (used by
/// tuple-of-collected-strategies patterns).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_u64() as $t / (u64::MAX as $t + 1.0);
                self.start + (self.end - self.start) * unit
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = rng.next_u64() as $t / u64::MAX as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_full_width_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let x = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let y = (1u32..=u32::MAX).generate(&mut rng);
            assert!(y >= 1);
            let z = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let s = (0u8..10)
            .prop_map(|x| x as u32 * 2)
            .prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert!(s.generate(&mut rng) < 20);
        }
        let flat = (1usize..4).prop_flat_map(|n| vec![Just(n); n]);
        for _ in 0..50 {
            let v = flat.generate(&mut rng);
            assert_eq!(v.len(), v[0]);
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        for _ in 0..50 {
            assert!(matches!(u.generate(&mut rng), 1 | 2));
        }
    }
}
