//! The deterministic PRNG behind every generated value (splitmix64).

/// A small, fast, deterministic PRNG (splitmix64). Not cryptographic;
/// plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded explicitly.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derive the seed from a test's name (FNV-1a), so every property
    /// test is reproducible but distinct.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// A value uniform in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below(0)");
        self.next_u128() % bound
    }

    /// A value uniform in `0..bound` as `usize`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_separated() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            assert!(r.below_usize(3) < 3);
        }
    }
}
