//! `any::<T>()` — generate arbitrary values of primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical "any value" generator.
pub trait Arbitrary {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! tuple_arbitrary {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

tuple_arbitrary! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_arrays_generate() {
        let mut rng = TestRng::new(3);
        let _: u8 = any::<u8>().generate(&mut rng);
        let _: [u8; 6] = any::<[u8; 6]>().generate(&mut rng);
        let _: (u32, bool) = any::<(u32, bool)>().generate(&mut rng);
        // bool eventually takes both values.
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
