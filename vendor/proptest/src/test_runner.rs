//! Test-runner configuration and failure type.

/// Configuration for a `proptest!` block (`ProptestConfig` in the
/// prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// How many cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (as in the real crate) so CI can run elevated-case
    /// sweeps without touching the tests.
    fn default() -> Config {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(256);
        Config { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
