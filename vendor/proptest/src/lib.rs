//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the real proptest
//! cannot be vendored. This crate re-implements the subset of its API the
//! workspace's property tests use — `proptest!`, `prop_assert*!`,
//! `prop_oneof!`, `any::<T>()`, integer-range / tuple / `Vec` strategies,
//! `prop_map` / `prop_flat_map` / `prop_filter`, and
//! `collection::{vec, btree_map}` — on top of a small deterministic PRNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assert
//!   message) but is not minimized.
//! * **Deterministic seeds.** Every test derives its seed from its own
//!   name, so runs are reproducible across processes and machines.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// The glob import the tests start with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run a block of property tests.
///
/// Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest '{}' case {}/{} failed: {}",
                            stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with `Debug` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with `Debug` diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// `prop_assume!(cond)`: silently skip the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `prop_oneof![a, b, c]`: pick one of several same-valued strategies
/// uniformly at random. (The weighted `w => strategy` form of the real
/// crate is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
