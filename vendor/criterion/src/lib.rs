//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so the real criterion
//! cannot be vendored. This crate implements the subset of its API the
//! workspace's benches use — `criterion_group!` / `criterion_main!` (both
//! forms), `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `sample_size` and
//! `Bencher::iter` — measuring wall-clock time with `std::time::Instant`
//! and printing one line per benchmark. No statistics, plots, or saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, ops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times closures; see [`Bencher::iter`].
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, untimed.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }
}

/// The harness entry point.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_one("", &name.to_string(), samples, None, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    /// Declare units processed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&self.name, &id.to_string(), samples, self.throughput, f);
        self
    }

    /// Benchmark `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (report formatting hook in the real crate).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("{full:<50} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.1} MB/s", n as f64 / per_iter / 1e6)
        }
        _ => String::new(),
    };
    println!("{full:<50} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// `criterion_group!(name, target, ...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("add", 5), &5u64, |b, &x| {
            b.iter(|| count += x)
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn harness_runs() {
        criterion_group!(demo_group, bench_demo);
        demo_group();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
