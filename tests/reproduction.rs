//! End-to-end reproduction checks: the qualitative targets of DESIGN.md §6
//! — the orderings, knees and factors the thesis reports — asserted over
//! reduced-scale runs of the actual experiment code.

use pcapbench::core::{figures, ExecConfig, Scale};

/// A reduced scale that still outlasts buffer capacity where it matters.
fn scale() -> Scale {
    Scale {
        count: 250_000,
        repeats: 1,
        rates: vec![Some(300.0), Some(600.0), None],
    }
}

/// All figures run on the parallel sweep engine; results are identical to
/// serial, so the assertions below are job-count independent.
fn exec() -> ExecConfig {
    ExecConfig::parallel()
}

#[test]
fn headline_moorhen_wins_flamingo_loses() {
    // §7.1: "moorhen, the FreeBSD 5.4/AMD Opteron combination, is
    // performing best ... flamingo ... is often losing more packets than
    // the other systems."
    let e = figures::fig6_3_increased_buffers(&scale(), true, &exec());
    let moorhen = e.final_capture("moorhen").unwrap();
    let flamingo = e.final_capture("flamingo").unwrap();
    assert!(moorhen > 99.0, "moorhen dual loses ~nothing: {moorhen}");
    assert!(
        flamingo < moorhen - 5.0,
        "flamingo ({flamingo}) must trail moorhen ({moorhen})"
    );
    for name in ["swan", "snipe"] {
        let c = e.final_capture(name).unwrap();
        assert!(
            c >= flamingo,
            "{name} ({c}) should not fall below flamingo ({flamingo}) dual-CPU"
        );
    }
}

#[test]
fn single_cpu_ordering_and_knees() {
    let e = figures::fig6_3_increased_buffers(&scale(), false, &exec());
    // moorhen stays close to lossless even single-CPU.
    assert!(e.final_capture("moorhen").unwrap() > 90.0);
    // The Linux systems capture everything at 300 but lose at the top.
    for name in ["swan", "snipe"] {
        let s = e.series.iter().find(|s| s.label.contains(name)).unwrap();
        assert!(s.points[0].capture > 99.0, "{name} fine at 300");
        assert!(
            s.points.last().unwrap().capture < 95.0,
            "{name} must drop at full speed: {}",
            s.points.last().unwrap().capture
        );
    }
    // flamingo collapses hardest.
    let f = e.final_capture("flamingo").unwrap();
    let worst_linux = e
        .final_capture("swan")
        .unwrap()
        .min(e.final_capture("snipe").unwrap());
    assert!(f < worst_linux, "flamingo ({f}) worst single-CPU");
}

#[test]
fn default_buffers_hurt_linux() {
    // §6.3.1/§7.1: increased buffers raise the Linux drop knee.
    let s = scale();
    let def = figures::fig6_2_default_buffers(&s, false, &exec());
    let inc = figures::fig6_3_increased_buffers(&s, false, &exec());
    for name in ["swan", "snipe"] {
        let d = def.series.iter().find(|x| x.label.contains(name)).unwrap();
        let i = inc.series.iter().find(|x| x.label.contains(name)).unwrap();
        // At 600 Mbit/s the small default rmem already drops bursts that
        // 128 MB absorbs.
        assert!(
            d.points[1].capture < i.points[1].capture,
            "{name} at 600: default {} !< increased {}",
            d.points[1].capture,
            i.points[1].capture
        );
    }
}

#[test]
fn buffer_sweep_shows_freebsd_cache_dip_and_capacity_effect() {
    // Fig 6.4(a): single-CPU FreeBSD deteriorates once the double buffer
    // exceeds the cache, and huge buffers buy flamingo capture by
    // capacity alone.
    let s = Scale {
        count: 150_000,
        repeats: 1,
        rates: vec![None],
    };
    let e = figures::fig6_4_buffer_sweep(&s, false, &exec());
    let moorhen = e
        .series
        .iter()
        .find(|x| x.label.contains("moorhen"))
        .unwrap();
    let at = |kb: f64| {
        moorhen
            .points
            .iter()
            .find(|p| p.x == kb)
            .map(|p| p.capture)
            .unwrap()
    };
    assert!(
        at(512.0) > at(8192.0),
        "cached 512kB ({}) must beat uncached 8MB ({})",
        at(512.0),
        at(8192.0)
    );
    let flamingo = e
        .series
        .iter()
        .find(|x| x.label.contains("flamingo"))
        .unwrap();
    let first = flamingo.points.first().unwrap().capture;
    let last = flamingo.points.last().unwrap().capture;
    assert!(
        last > first + 20.0,
        "the 256MB buffer must lift flamingo by capacity: {first} -> {last}"
    );
}

#[test]
fn filters_are_cheap_for_freebsd_costlier_for_linux() {
    // Fig 6.6: "using BPF filters is cheap"; Linux drops a few more
    // packets at the highest rates.
    let s = scale();
    let plain = figures::fig6_3_increased_buffers(&s, true, &exec());
    let filt = figures::fig6_6_filter(&s, true, &exec());
    let m_plain = plain.final_capture("moorhen").unwrap();
    let m_filt = filt.final_capture("moorhen").unwrap();
    assert!(
        (m_plain - m_filt).abs() < 3.0,
        "FreeBSD filter cost ~negligible: {m_plain} vs {m_filt}"
    );
    let l_plain = plain.final_capture("swan").unwrap();
    let l_filt = filt.final_capture("swan").unwrap();
    assert!(
        l_filt <= l_plain + 0.5,
        "Linux must not improve with a filter: {l_plain} -> {l_filt}"
    );
}

#[test]
fn eight_apps_collapse_linux_but_not_freebsd() {
    // Fig 6.9 / §7.1: under many applications Linux' capture rate drops
    // toward zero while FreeBSD still delivers relevant fractions,
    // shared evenly.
    let s = Scale {
        count: 600_000,
        repeats: 1,
        rates: vec![None],
    };
    let e = figures::fig6_789_multiapp(&s, 8, &exec());
    let lin = e.final_capture("swan").unwrap();
    let bsd = e.final_capture("moorhen").unwrap();
    assert!(
        lin < bsd - 15.0,
        "8-app Linux ({lin}) must fall well below FreeBSD ({bsd})"
    );
    let m = e
        .series
        .iter()
        .find(|x| x.label.contains("moorhen"))
        .unwrap();
    let p = m.points.last().unwrap();
    assert!(
        p.capture_best - p.capture_worst < 20.0,
        "FreeBSD shares evenly: worst {} best {}",
        p.capture_worst,
        p.capture_best
    );
}

#[test]
fn memcpy_load_favours_opterons() {
    // Fig 6.10(b): "in dual processor mode both FreeBSD systems are a
    // notch above the Linux systems"; Opterons lead on memory bandwidth.
    let s = Scale {
        count: 500_000,
        repeats: 1,
        rates: vec![None],
    };
    let e = figures::fig6_10_memcpy(&s, 50, true, &exec());
    let moorhen = e.final_capture("moorhen").unwrap();
    let flamingo = e.final_capture("flamingo").unwrap();
    let swan = e.final_capture("swan").unwrap();
    let snipe = e.final_capture("snipe").unwrap();
    assert!(
        moorhen >= flamingo,
        "AMD ({moorhen}) >= Xeon ({flamingo}) under copy load"
    );
    assert!(
        swan >= snipe,
        "AMD ({swan}) >= Xeon ({snipe}) under copy load"
    );
    assert!(
        moorhen >= swan,
        "FreeBSD ({moorhen}) >= Linux ({swan}) under copy load"
    );
}

#[test]
fn compression_favours_the_higher_clocked_xeons() {
    // Fig 6.11(b): "each of the Intel systems performs better than the
    // corresponding AMD system" — a novelty among the measurements.
    let s = Scale {
        count: 120_000,
        repeats: 1,
        rates: vec![Some(500.0)],
    };
    let e = figures::fig6_11_gzip(&s, 3, true, &exec());
    let moorhen = e.final_capture("moorhen").unwrap();
    let flamingo = e.final_capture("flamingo").unwrap();
    let swan = e.final_capture("swan").unwrap();
    let snipe = e.final_capture("snipe").unwrap();
    assert!(
        flamingo >= moorhen,
        "Intel ({flamingo}) >= AMD ({moorhen}) under compression"
    );
    assert!(
        snipe >= swan,
        "Intel ({snipe}) >= AMD ({swan}) under compression"
    );
    // Fig B.3: level 9 overloads everything (longer run: the buffer can
    // only mask a fixed packet count).
    let s9 = Scale {
        count: 500_000,
        repeats: 1,
        rates: vec![Some(500.0)],
    };
    let e9 = figures::fig6_11_gzip(&s9, 9, true, &exec());
    for name in ["swan", "snipe", "moorhen", "flamingo"] {
        let c = e9.final_capture(name).unwrap();
        assert!(c < 40.0, "{name} must be overloaded at level 9: {c}");
    }
}

#[test]
fn header_writing_is_cheap() {
    // Fig 6.14(b): FreeBSD unchanged, Linux loses about 10%.
    let s = scale();
    let plain = figures::fig6_3_increased_buffers(&s, true, &exec());
    let disk = figures::fig6_14_headers(&s, true, &exec());
    let m_delta = plain.final_capture("moorhen").unwrap() - disk.final_capture("moorhen").unwrap();
    assert!(
        m_delta.abs() < 5.0,
        "FreeBSD header writing ~free: delta {m_delta}"
    );
    let l_delta = plain.final_capture("swan").unwrap() - disk.final_capture("swan").unwrap();
    assert!(
        (-1.0..25.0).contains(&l_delta),
        "Linux pays a moderate price: delta {l_delta}"
    );
}

#[test]
fn mmap_patch_rescues_linux() {
    // Fig 6.15: the mmap'ed libpcap outperforms the unpatched stack;
    // remaining drops only at the top on snipe.
    let s = Scale {
        count: 250_000,
        repeats: 1,
        rates: vec![None],
    };
    let e = figures::fig6_15_mmap(&s, false, &exec());
    for name in ["swan", "snipe"] {
        let stock = e
            .series
            .iter()
            .find(|x| x.label.contains(name) && !x.label.contains("mmap"))
            .unwrap()
            .points
            .last()
            .unwrap()
            .capture;
        let mmap = e
            .series
            .iter()
            .find(|x| x.label.contains(name) && x.label.contains("mmap"))
            .unwrap()
            .points
            .last()
            .unwrap()
            .capture;
        assert!(
            mmap > stock + 10.0,
            "{name}: mmap ({mmap}) must clearly beat stock ({stock})"
        );
    }
}

#[test]
fn hyperthreading_changes_little() {
    // Fig 6.16: "neither a noticeable amelioration nor deterioration".
    let s = Scale {
        count: 100_000,
        repeats: 1,
        rates: vec![Some(700.0), None],
    };
    let e = figures::fig6_16_ht(&s, &exec());
    for name in ["snipe", "flamingo"] {
        let plain = e
            .series
            .iter()
            .find(|x| x.label.contains(name) && !x.label.ends_with("HT"))
            .unwrap()
            .points
            .last()
            .unwrap()
            .capture;
        let ht = e
            .series
            .iter()
            .find(|x| x.label.contains(name) && x.label.ends_with("HT"))
            .unwrap()
            .points
            .last()
            .unwrap()
            .capture;
        assert!(
            (plain - ht).abs() < 12.0,
            "{name}: HT must be roughly neutral: {plain} vs {ht}"
        );
    }
}

#[test]
fn newer_freebsd_is_better() {
    // Fig B.1: the step from 5.2.1 to 5.4 is "quite benefitting".
    let s = Scale {
        count: 100_000,
        repeats: 1,
        rates: vec![None],
    };
    let e = figures::figb_1_freebsd_versions(&s, &exec());
    // Series come in (5.4, 5.2.1) pairs per machine.
    let new = e
        .series
        .iter()
        .find(|x| x.label.contains("flamingo") && !x.label.contains("5.2.1"))
        .unwrap()
        .points
        .last()
        .unwrap()
        .capture;
    let old = e
        .series
        .iter()
        .find(|x| x.label.contains("flamingo") && x.label.contains("5.2.1"))
        .unwrap()
        .points
        .last()
        .unwrap()
        .capture;
    assert!(new >= old, "5.4 ({new}) must not lose to 5.2.1 ({old})");
}

#[test]
fn pipe_to_gzip_converges_systems() {
    // Fig 6.12: "all systems are very close to each other".
    let s = Scale {
        count: 400_000,
        repeats: 1,
        rates: vec![Some(600.0)],
    };
    let e = figures::fig6_12_pipe(&s, &exec());
    let caps: Vec<f64> = ["swan", "snipe", "moorhen", "flamingo"]
        .iter()
        .map(|n| e.final_capture(n).unwrap())
        .collect();
    let spread = caps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - caps.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 35.0, "pipe setup converges systems: {caps:?}");
}
