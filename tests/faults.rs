//! Fault-injection guarantees: an armed plan is deterministic across
//! every execution knob, host-side faults never change results, and the
//! shipped machine-side faults demonstrably move losses into their
//! advertised attribution buckets.
//!
//! Figure-level tests use packet counts no other test binary uses
//! (41k/43k), so the process-global run cache cannot leak cells between
//! tests; tests that flush the cache serialize on [`CACHE_CLEAR_LOCK`].

use pcapbench::core::{figures, ExecConfig, PipelineConfig, Scale};
use pcapbench::des::SimTime;
use pcapbench::faultsim::FaultPlan;
use pcapbench::hw::MachineSpec;
use pcapbench::oskernel::{MachineSim, SimConfig};
use pcapbench::testbed::RunCache;
use pcapbench::wire::{MacAddr, SimPacket};
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

/// Serializes the tests that flush the process-global run cache.
static CACHE_CLEAR_LOCK: Mutex<()> = Mutex::new(());

/// `n` dense UDP arrivals, `gap_ns` apart.
fn packets(n: u64, gap_ns: u64) -> Vec<(SimTime, SimPacket)> {
    (0..n)
        .map(|i| {
            let t = SimTime::from_nanos((i + 1) * gap_ns);
            let p = SimPacket::build_udp(
                i,
                t.as_nanos(),
                659,
                MacAddr::ZERO,
                MacAddr::BROADCAST,
                Ipv4Addr::new(192, 168, 10, 100),
                Ipv4Addr::new(192, 168, 10, 12),
                9,
                9,
            );
            (t, p)
        })
        .collect()
}

fn plan(spec: &str) -> FaultPlan {
    FaultPlan::parse(spec)
        .expect("valid spec")
        .expect("armed plan")
}

#[test]
fn armed_plan_is_deterministic_across_execution_knobs() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 41_000,
        repeats: 2,
        rates: vec![Some(250.0), None],
    };
    let chaos = Arc::new(plan("chaos:99"));

    RunCache::global().clear();
    let base = figures::fig6_2_default_buffers(&scale, true, &ExecConfig::with_jobs(1));

    RunCache::global().clear();
    let serial = figures::fig6_2_default_buffers(
        &scale,
        true,
        &ExecConfig::with_jobs(1)
            .with_faults(Arc::clone(&chaos))
            .with_oracle(true),
    );

    // Same plan, different execution shape: more workers, an odd chunk
    // size, stream sharing off. Bytes must not move.
    RunCache::global().clear();
    let reshaped = figures::fig6_2_default_buffers(
        &scale,
        true,
        &ExecConfig::with_jobs(4)
            .with_pipeline(PipelineConfig::with_chunk(1009).with_stream_cache(0))
            .with_faults(Arc::clone(&chaos))
            .with_oracle(true),
    );
    assert_eq!(
        serial.to_csv(),
        reshaped.to_csv(),
        "same plan+seed must render identical CSV at any --jobs/--chunk/--stream-cache"
    );
    assert_eq!(serial.to_table(), reshaped.to_table());

    // The machine-side faults really bit: the faulted sweep differs from
    // the unfaulted baseline, and a reseeded plan differs from both.
    assert_ne!(
        base.to_csv(),
        serial.to_csv(),
        "an armed chaos plan must change the sweep"
    );
    RunCache::global().clear();
    let reseeded = figures::fig6_2_default_buffers(
        &scale,
        true,
        &ExecConfig::with_jobs(4)
            .with_faults(Arc::new(plan("chaos:100")))
            .with_oracle(true),
    );
    assert_ne!(
        serial.to_csv(),
        reseeded.to_csv(),
        "a different fault seed must place the windows differently"
    );
}

#[test]
fn host_side_faults_do_not_change_results() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 43_000,
        repeats: 2,
        rates: vec![Some(220.0), None],
    };
    RunCache::global().clear();
    let base = figures::fig6_2_default_buffers(&scale, true, &ExecConfig::with_jobs(4));
    // Splitter hiccups stall the producer thread and the cache squeeze
    // shrinks the stream budget: both reshape execution only, so the
    // rendered bytes must equal the unfaulted run's.
    RunCache::global().clear();
    let hiccuped = figures::fig6_2_default_buffers(
        &scale,
        true,
        &ExecConfig::with_jobs(4)
            .with_faults(Arc::new(plan("hiccup+squeeze:7")))
            .with_oracle(true),
    );
    assert_eq!(
        base.to_csv(),
        hiccuped.to_csv(),
        "host-side faults must be invisible in the results"
    );
    assert_eq!(base.to_table(), hiccuped.to_table());
}

#[test]
fn ringstall_moves_losses_into_the_nic_bucket() {
    // 120 ms of dense traffic spans at least two 40 ms stall periods, so
    // the shrunken ring must overflow where the full ring did not.
    let spec = MachineSpec::swan();
    let stream = packets(40_000, 3_000);
    let plain = MachineSim::new(spec, SimConfig::default()).run(stream.clone());
    let stalled = MachineSim::new(spec, SimConfig::default())
        .with_faults(Some(plan("ringstall:5").arm_machine()))
        .run(stream);
    assert!(
        stalled.nic_ring_drops > plain.nic_ring_drops,
        "ring stall must add NIC drops: {} vs {}",
        stalled.nic_ring_drops,
        plain.nic_ring_drops
    );
    for a in stalled.attributions() {
        assert!(a.balanced(), "unbalanced under ringstall: {a:?}");
    }
}

#[test]
fn kshrink_moves_losses_into_the_kernel_buffer_bucket() {
    // Shrinking the capture buffers to 0.8% for 12 ms of every 30 ms
    // must produce kernel drops the full-size buffers avoided. The 2005
    // OS-default buffers shrink below one packet charge, so admissions
    // inside a window overflow: on FreeBSD the BPF store rejects
    // (buffer bucket), on Linux the shared pool rejects (pool bucket).
    // The increased thesis setting would absorb a 120 ms run even
    // shrunken.
    let cfg = SimConfig {
        buffers: pcapbench::oskernel::BufferConfig::default_buffers(),
        ..SimConfig::default()
    };
    let stream = packets(40_000, 3_000);
    let buffer_drops = |r: &pcapbench::oskernel::RunReport| -> u64 {
        r.apps.iter().map(|a| a.stats.dropped_buffer).sum()
    };
    let pool_drops = |r: &pcapbench::oskernel::RunReport| -> u64 {
        r.apps.iter().map(|a| a.stats.dropped_pool).sum()
    };

    let spec = MachineSpec::moorhen();
    let plain = MachineSim::new(spec, cfg.clone()).run(stream.clone());
    let shrunk = MachineSim::new(spec, cfg.clone())
        .with_faults(Some(plan("kshrink:5").arm_machine()))
        .run(stream.clone());
    assert!(
        buffer_drops(&shrunk) > buffer_drops(&plain),
        "FreeBSD kernel shrink must add buffer drops: {} vs {}",
        buffer_drops(&shrunk),
        buffer_drops(&plain)
    );
    for a in shrunk.attributions() {
        assert!(a.balanced(), "unbalanced under kshrink: {a:?}");
    }

    let spec = MachineSpec::swan();
    let plain = MachineSim::new(spec, cfg.clone()).run(stream.clone());
    let shrunk = MachineSim::new(spec, cfg)
        .with_faults(Some(plan("kshrink:5").arm_machine()))
        .run(stream);
    assert!(
        pool_drops(&shrunk) > pool_drops(&plain),
        "Linux kernel shrink must add pool drops: {} vs {}",
        pool_drops(&shrunk),
        pool_drops(&plain)
    );
    for a in shrunk.attributions() {
        assert!(a.balanced(), "unbalanced under kshrink: {a:?}");
    }
}

#[test]
fn preempt_shifts_drop_attribution_deterministically() {
    // A preempting foreign task holds the core at every dispatch inside
    // its windows, so capture work completes late and the run loses
    // packets it otherwise captured. The shift must be a pure function
    // of the plan seed: same seed, same report; new seed, new windows.
    let spec = MachineSpec::swan();
    let stream = packets(40_000, 3_000);
    let received =
        |r: &pcapbench::oskernel::RunReport| -> u64 { r.apps.iter().map(|a| a.received).sum() };
    let dropped = |r: &pcapbench::oskernel::RunReport| -> u64 {
        r.attributions().iter().map(|a| a.dropped()).sum()
    };

    let plain = MachineSim::new(spec, SimConfig::default()).run(stream.clone());
    let preempted = MachineSim::new(spec, SimConfig::default())
        .with_faults(Some(plan("preempt:5").arm_machine()))
        .run(stream.clone());
    assert!(
        received(&preempted) < received(&plain),
        "a preempted machine must capture less: {} vs {}",
        received(&preempted),
        received(&plain)
    );
    assert!(
        dropped(&preempted) > dropped(&plain),
        "the lost packets must land in the drop buckets: {} vs {}",
        dropped(&preempted),
        dropped(&plain)
    );
    for a in preempted.attributions() {
        assert!(a.balanced(), "unbalanced under preempt: {a:?}");
    }

    let again = MachineSim::new(spec, SimConfig::default())
        .with_faults(Some(plan("preempt:5").arm_machine()))
        .run(stream.clone());
    assert_eq!(
        format!("{preempted:?}"),
        format!("{again:?}"),
        "same plan seed must reproduce the report exactly"
    );
    let reseeded = MachineSim::new(spec, SimConfig::default())
        .with_faults(Some(plan("preempt:6").arm_machine()))
        .run(stream);
    assert_ne!(
        format!("{preempted:?}"),
        format!("{reseeded:?}"),
        "a different seed must place the preempt windows differently"
    );
}

#[test]
fn apppause_moves_losses_into_the_app_bucket() {
    // Pausing the application 30 ms of every 50 ms with a short drain
    // grace leaves packets the app never got to process: the app-side
    // residue bucket must grow while NIC behaviour is untouched. FreeBSD
    // with the thesis' big buffers is the interesting machine — read()
    // copies a whole (multi-megabyte) buffer out before per-packet
    // processing, so a pause window strands thousands of packets on the
    // *application* side of the copyout, not just in the kernel.
    let spec = MachineSpec::moorhen();
    let cfg = SimConfig {
        drain_timeout_ns: 2_000_000,
        ..SimConfig::default()
    };
    let stream = packets(40_000, 3_000);
    let plain = MachineSim::new(spec, cfg.clone()).run(stream.clone());
    let paused = MachineSim::new(spec, cfg)
        .with_faults(Some(plan("apppause:5").arm_machine()))
        .run(stream);
    let app_residue = |r: &pcapbench::oskernel::RunReport| -> u64 {
        r.apps.iter().map(|a| a.stats.app_residue).sum()
    };
    let received =
        |r: &pcapbench::oskernel::RunReport| -> u64 { r.apps.iter().map(|a| a.received).sum() };
    assert!(
        app_residue(&paused) > app_residue(&plain),
        "app pause must strand unprocessed packets at the application: {} vs {}",
        app_residue(&paused),
        app_residue(&plain)
    );
    assert!(
        received(&paused) < received(&plain),
        "a paused application must process fewer packets"
    );
    assert_eq!(
        paused.nic_ring_drops, plain.nic_ring_drops,
        "apppause is an application fault; the NIC must not notice"
    );
    for a in paused.attributions() {
        assert!(a.balanced(), "unbalanced under apppause: {a:?}");
    }
}
