//! Determinism and exactness guarantees of the tracing layer: the same
//! seed must export byte-identical Chrome trace JSON and event CSV at any
//! worker count and any pipeline shape, tracing must not perturb the
//! rendered results, and every traced cell's per-stage drop attribution
//! must partition its generated packets exactly.
//!
//! Like `tests/determinism.rs`, each test uses a packet count no other
//! test in this binary uses (the run and stream caches are
//! process-global), and tests that flush the run cache serialize on
//! [`CACHE_CLEAR_LOCK`].

use pcapbench::core::{figures, ExecConfig, PipelineConfig, Scale};
use pcapbench::testbed::RunCache;
use pcapbench::trace::{export, StageFilter, TraceCollector, TraceSpec};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes the tests that flush the process-global run cache.
static CACHE_CLEAR_LOCK: Mutex<()> = Mutex::new(());

fn traced_exec(jobs: usize) -> (ExecConfig, Arc<TraceCollector>) {
    let collector = Arc::new(TraceCollector::new(TraceSpec::default()));
    let exec = ExecConfig::with_jobs(jobs).with_trace(Arc::clone(&collector));
    (exec, collector)
}

/// A `sched`-filtered exec: the collector records per-CPU scheduling
/// spans (and drops, to keep lifecycle assertions available) instead of
/// the full lifecycle log.
fn sched_exec(jobs: usize, cap: usize) -> (ExecConfig, Arc<TraceCollector>) {
    let spec = TraceSpec {
        filter: StageFilter::parse("sched,drops").expect("valid filter"),
        cap,
    };
    let collector = Arc::new(TraceCollector::new(spec));
    let exec = ExecConfig::with_jobs(jobs).with_trace(Arc::clone(&collector));
    (exec, collector)
}

#[test]
fn trace_exports_are_byte_identical_at_any_jobs_and_pipeline() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 23_500,
        repeats: 2,
        rates: vec![Some(250.0), None],
    };
    // Reference: serial, default streaming pipeline.
    RunCache::global().clear();
    let (ref_exec, ref_collector) = traced_exec(1);
    let ref_fig = figures::fig6_2_default_buffers(&scale, true, &ref_exec);
    let ref_cells = ref_collector.cells();
    assert!(!ref_cells.is_empty(), "tracing must record cells");
    let ref_json = export::chrome_trace_json(&ref_cells);
    let ref_csv = export::events_csv(&ref_cells);
    export::validate_json(&ref_json).expect("trace JSON must be RFC 8259 valid");

    let variants: [(usize, PipelineConfig); 3] = [
        // parallel, default streaming
        (4, PipelineConfig::streaming()),
        // materialized reference path
        (1, PipelineConfig::materialized()),
        // odd chunking, stream sharing off, parallel
        (4, PipelineConfig::with_chunk(1009).with_stream_cache(0)),
    ];
    for (jobs, pipeline) in variants {
        RunCache::global().clear();
        let (exec, collector) = traced_exec(jobs);
        let exec = exec.with_pipeline(pipeline);
        let fig = figures::fig6_2_default_buffers(&scale, true, &exec);
        assert_eq!(
            ref_fig.to_csv(),
            fig.to_csv(),
            "jobs={jobs} {pipeline:?}: tracing or execution shape changed the results"
        );
        assert_eq!(
            ref_json,
            export::chrome_trace_json(&collector.cells()),
            "jobs={jobs} {pipeline:?}: trace JSON must be byte-identical"
        );
        assert_eq!(
            ref_csv,
            export::events_csv(&collector.cells()),
            "jobs={jobs} {pipeline:?}: event CSV must be byte-identical"
        );
    }
}

/// The sched-determinism tests' shared scale (packet count unique to
/// this binary).
fn sched_scale() -> Scale {
    Scale {
        count: 22_500,
        repeats: 1,
        rates: vec![Some(400.0), None],
    }
}

/// The serial sched-traced reference, computed once. Callers must hold
/// [`CACHE_CLEAR_LOCK`].
fn sched_reference() -> &'static (String, String) {
    static REFERENCE: OnceLock<(String, String)> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        RunCache::global().clear();
        let (exec, collector) = sched_exec(1, 1 << 16);
        let fig = figures::fig6_2_default_buffers(&sched_scale(), true, &exec);
        let json = export::chrome_trace_json(&collector.cells());
        assert!(
            json.contains("\"cat\":\"sched\""),
            "a sched-filtered run must export scheduling spans"
        );
        (fig.to_csv(), json)
    })
}

proptest! {
    // The scheduler's dispatch log — every (work item, CPU, time, span)
    // decision, exported as the sched-filtered Chrome JSON — must be
    // byte-identical across worker counts and chunk sizes, like the
    // results themselves. Each case is a whole sweep, so the case count
    // stays at the shape matrix's size.
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn sched_trace_is_byte_identical_at_any_jobs_and_chunk(
        jobs in prop_oneof![Just(1usize), Just(4usize)],
        chunk in prop_oneof![Just(1usize), Just(4096usize)],
    ) {
        let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
        let (ref_csv, ref_json) = sched_reference();
        RunCache::global().clear();
        let (exec, collector) = sched_exec(jobs, 1 << 16);
        let exec = exec.with_pipeline(PipelineConfig::with_chunk(chunk));
        let fig = figures::fig6_2_default_buffers(&sched_scale(), true, &exec);
        prop_assert_eq!(
            ref_csv,
            &fig.to_csv(),
            "--jobs {} --chunk {}: sched tracing or shape changed the results",
            jobs, chunk
        );
        prop_assert_eq!(
            ref_json,
            &export::chrome_trace_json(&collector.cells()),
            "--jobs {} --chunk {}: the scheduler dispatch log must not depend on execution shape",
            jobs, chunk
        );
    }
}

#[test]
fn sched_trace_export_matches_golden() {
    // Pins the Perfetto-loadable rendering of per-CPU scheduling spans:
    // ph:"X" complete events on synthetic cpu rows, named work kinds,
    // and the one-time per-CPU thread metadata. Small on purpose — one
    // cell, bounded sink — so the fixture stays reviewable. Regenerate
    // after an intentional format change with:
    // UPDATE_GOLDEN=1 cargo test --test trace
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 5_500,
        repeats: 1,
        rates: vec![None],
    };
    RunCache::global().clear();
    let (exec, collector) = sched_exec(1, 64);
    figures::fig6_2_default_buffers(&scale, true, &exec);
    let json = export::chrome_trace_json(&collector.cells());
    export::validate_json(&json).expect("sched trace JSON must be RFC 8259 valid");
    for needle in ["\"cat\":\"sched\"", "kernel_batch", "thread_name", "cpu0"] {
        assert!(json.contains(needle), "sched export must contain {needle}");
    }

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("trace_sched.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test --test trace",
            path.display()
        )
    });
    assert_eq!(
        expected, json,
        "sched trace export drifted from its checked-in golden; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn tracing_does_not_change_rendered_results() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 24_500,
        repeats: 1,
        rates: vec![Some(300.0), None],
    };
    RunCache::global().clear();
    let untraced = figures::fig6_6_filter(&scale, true, &ExecConfig::with_jobs(4));
    RunCache::global().clear();
    let (exec, collector) = traced_exec(4);
    let traced = figures::fig6_6_filter(&scale, true, &exec);
    assert_eq!(untraced.to_csv(), traced.to_csv());
    assert_eq!(untraced.to_table(), traced.to_table());
    assert!(!collector.is_empty());
}

#[test]
fn traced_buffer_sweep_attributions_partition_exactly() {
    // The acceptance run: the buffer-size experiment (Fig 6.4) traced at
    // full speed, where small buffers genuinely drop. Every cell's
    // per-stage drop counts must sum exactly to generated − delivered.
    let scale = Scale {
        count: 21_500,
        repeats: 1,
        rates: vec![None],
    };
    let (exec, collector) = traced_exec(4);
    figures::fig6_4_buffer_sweep(&scale, false, &exec);
    assert!(!collector.is_empty());
    let cells = collector.cells();
    let mut saw_drops = false;
    for cell in &cells {
        for sut in &cell.suts {
            assert!(
                !sut.attributions.is_empty(),
                "{}/{}: traced SUT must attribute",
                cell.label,
                sut.label
            );
            for attr in &sut.attributions {
                assert!(
                    attr.balanced(),
                    "{}/{}: {attr:?} must balance",
                    cell.label,
                    sut.label
                );
                assert_eq!(attr.generated, scale.count, "{}", cell.label);
                assert_eq!(
                    attr.generated - attr.delivered,
                    attr.dropped(),
                    "{}/{}: drops must sum to generated − delivered",
                    cell.label,
                    sut.label
                );
                saw_drops |= attr.dropped() > 0;
            }
            assert!(
                !sut.report.events.is_empty(),
                "{}/{}: traced SUT must record events",
                cell.label,
                sut.label
            );
        }
    }
    assert!(
        saw_drops,
        "a full-speed buffer sweep must lose packets somewhere"
    );
    // And the whole collection must export as loadable JSON.
    let json = export::chrome_trace_json(&cells);
    export::validate_json(&json).expect("trace JSON must be valid");
    assert!(json.contains("drop_attribution/app0"));
}
