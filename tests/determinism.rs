//! Determinism guarantees of the parallel sweep engine: the same seed
//! must produce byte-identical outputs at any worker count and any
//! streaming-pipeline shape, and the in-process [`RunCache`] and
//! content-addressed stream cache must be invisible in the results.
//!
//! Each test uses a packet count no other test in this binary uses, so
//! the process-global cache cannot leak cells between concurrently
//! running tests and the run/cached counters stay exact. Tests that
//! *clear* the global cache additionally serialize on
//! [`CACHE_CLEAR_LOCK`], so one test's flush cannot break another's
//! cold/warm counter assertions.

use pcapbench::core::{figures, ExecConfig, PipelineConfig, Scale};
use pcapbench::testbed::RunCache;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// Serializes the tests that flush the process-global run cache.
static CACHE_CLEAR_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn csv_is_byte_identical_at_any_job_count() {
    let scale = Scale {
        count: 31_000,
        repeats: 2,
        rates: vec![Some(200.0), Some(700.0), None],
    };
    let serial = figures::fig6_2_default_buffers(&scale, true, &ExecConfig::with_jobs(1));
    for jobs in [2, 8] {
        let exec = ExecConfig::with_jobs(jobs);
        let parallel = figures::fig6_2_default_buffers(&scale, true, &exec);
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "--jobs {jobs} must render the same CSV bytes as --jobs 1"
        );
        assert_eq!(
            serial.to_table(),
            parallel.to_table(),
            "--jobs {jobs} must render the same table bytes as --jobs 1"
        );
    }
}

#[test]
fn warm_cache_reproduces_cold_run_exactly() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 29_000,
        repeats: 2,
        rates: vec![Some(300.0), None],
    };
    // Cold: make sure nothing of this configuration is cached, then run.
    RunCache::global().clear();
    let cold_exec = ExecConfig::with_jobs(4);
    let cold = figures::fig6_6_filter(&scale, true, &cold_exec);
    assert!(
        cold_exec.stats.cells_run() >= 1,
        "cold run must simulate at least one cell"
    );

    // Warm: same figure again in the same process — every cell must come
    // from the cache and the rendered bytes must not change.
    let warm_exec = ExecConfig::with_jobs(4);
    let warm = figures::fig6_6_filter(&scale, true, &warm_exec);
    assert_eq!(
        warm_exec.stats.cells_run(),
        0,
        "warm run must simulate nothing"
    );
    assert_eq!(
        warm_exec.stats.cells_cached(),
        cold_exec.stats.cells_run() + cold_exec.stats.cells_cached(),
        "warm run must serve every cell from cache"
    );
    assert_eq!(cold.to_csv(), warm.to_csv());
    assert_eq!(cold.to_table(), warm.to_table());

    // And a cache flush in between must still not change the bytes.
    RunCache::global().clear();
    let reran = figures::fig6_6_filter(&scale, true, &ExecConfig::with_jobs(4));
    assert_eq!(cold.to_csv(), reran.to_csv());
}

/// The matrix test's shared scale (packet count unique to this binary).
fn matrix_scale() -> Scale {
    Scale {
        count: 33_000,
        repeats: 2,
        rates: vec![Some(250.0), None],
    }
}

/// The materialized single-worker reference rendering, computed once.
/// Callers must hold [`CACHE_CLEAR_LOCK`].
fn matrix_reference() -> &'static (String, String) {
    static REFERENCE: OnceLock<(String, String)> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        RunCache::global().clear();
        let exec = ExecConfig::with_jobs(1).with_pipeline(PipelineConfig::materialized());
        let reference = figures::fig6_2_default_buffers(&matrix_scale(), true, &exec);
        assert!(
            exec.stats.cells_run() >= 1,
            "reference must actually simulate"
        );
        (reference.to_csv(), reference.to_table())
    })
}

proptest! {
    // Every sampled (jobs, chunk, depth, stream-cache) execution shape
    // must render byte-identically to the materialized single-worker
    // reference. Each case is a whole sweep, so the case count is pinned
    // low here on purpose — CI's elevated PROPTEST_CASES sweep targets
    // the cheap parser/attribution properties, not this matrix.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn streaming_pipeline_is_byte_identical_to_materialized(
        jobs in 1usize..=4,
        chunk in prop_oneof![Just(1usize), 2usize..=8_192],
        depth in 1usize..=8,
        cache_on in any::<bool>(),
    ) {
        let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
        let (ref_csv, ref_table) = matrix_reference();
        // Flush the run cache so the streamed run really recomputes every
        // cell — pipeline shape is excluded from the cell key, so a warm
        // cache would make this comparison vacuous. The stream cache is
        // part of the sampled shape: off forces every cell to re-chunk
        // the generator, on shares the producer's chunk boundaries.
        RunCache::global().clear();
        let mut pipeline = PipelineConfig::with_chunk(chunk)
            .with_stream_cache(if cache_on { 1 << 30 } else { 0 });
        pipeline.depth_chunks = depth;
        let exec = ExecConfig::with_jobs(jobs).with_pipeline(pipeline);
        let streamed = figures::fig6_2_default_buffers(&matrix_scale(), true, &exec);
        prop_assert!(
            exec.stats.cells_run() >= 1,
            "--chunk {} --jobs {} must recompute, not hit the cache", chunk, jobs
        );
        prop_assert_eq!(
            ref_csv,
            &streamed.to_csv(),
            "--jobs {} --chunk {} --depth {} cache {} must render the reference CSV bytes",
            jobs, chunk, depth, cache_on
        );
        prop_assert_eq!(
            ref_table,
            &streamed.to_table(),
            "--jobs {} --chunk {} --depth {} cache {} must render the reference table bytes",
            jobs, chunk, depth, cache_on
        );
    }
}

#[test]
fn stream_cache_on_and_off_render_identical_csv() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 35_000,
        repeats: 2,
        rates: vec![Some(220.0), None],
    };
    // Reference: stream sharing off — every cell regenerates its stream.
    RunCache::global().clear();
    let off_exec =
        ExecConfig::with_jobs(4).with_pipeline(PipelineConfig::streaming().with_stream_cache(0));
    let off = figures::fig6_2_default_buffers(&scale, true, &off_exec);
    assert!(off_exec.stats.cells_run() >= 1, "off run must simulate");
    assert_eq!(
        off_exec.stats.streams_generated() + off_exec.stats.streams_shared(),
        0,
        "--stream-cache off must never consult the stream cache"
    );
    // Sharing on (the default): byte-identical CSV and table.
    RunCache::global().clear();
    let on_exec = ExecConfig::with_jobs(4);
    let on = figures::fig6_2_default_buffers(&scale, true, &on_exec);
    assert!(
        on_exec.stats.streams_generated() >= 1,
        "on run must publish its streams"
    );
    assert_eq!(
        off.to_csv(),
        on.to_csv(),
        "--stream-cache on/off must render the same CSV bytes"
    );
    assert_eq!(off.to_table(), on.to_table());
}

#[test]
fn repeats_use_distinct_streams_but_stay_deterministic() {
    // With >1 repeats the per-repeat seed derivation must give each
    // repeat its own stream (otherwise the median over repeats is just
    // the single-run value and the thesis' §6.2.2 calculation is moot),
    // and the whole aggregate must still be reproducible.
    let scale_1 = Scale {
        count: 27_000,
        repeats: 1,
        rates: vec![None],
    };
    let scale_5 = Scale {
        count: 27_000,
        repeats: 5,
        rates: vec![None],
    };
    let one = figures::fig6_2_default_buffers(&scale_1, false, &ExecConfig::with_jobs(8));
    let five_a = figures::fig6_2_default_buffers(&scale_5, false, &ExecConfig::with_jobs(8));
    let five_b = figures::fig6_2_default_buffers(&scale_5, false, &ExecConfig::with_jobs(3));
    assert_eq!(
        five_a.to_csv(),
        five_b.to_csv(),
        "repeat medians must not depend on the job count"
    );
    // Not a hard guarantee per-point, but over a whole overloaded sweep
    // the 5-repeat median CSV differing from the single run shows the
    // repeats really sampled different streams.
    assert_ne!(
        one.to_csv(),
        five_a.to_csv(),
        "5 repeats must not collapse to the single-repeat run"
    );
}
