//! Determinism guarantees of the parallel sweep engine: the same seed
//! must produce byte-identical outputs at any worker count and any
//! streaming-pipeline shape, and the in-process [`RunCache`] and
//! content-addressed stream cache must be invisible in the results.
//!
//! Each test uses a packet count no other test in this binary uses, so
//! the process-global cache cannot leak cells between concurrently
//! running tests and the run/cached counters stay exact. Tests that
//! *clear* the global cache additionally serialize on
//! [`CACHE_CLEAR_LOCK`], so one test's flush cannot break another's
//! cold/warm counter assertions.

use pcapbench::core::{figures, ExecConfig, PipelineConfig, Scale};
use pcapbench::testbed::RunCache;
use std::sync::Mutex;

/// Serializes the tests that flush the process-global run cache.
static CACHE_CLEAR_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn csv_is_byte_identical_at_any_job_count() {
    let scale = Scale {
        count: 31_000,
        repeats: 2,
        rates: vec![Some(200.0), Some(700.0), None],
    };
    let serial = figures::fig6_2_default_buffers(&scale, true, &ExecConfig::with_jobs(1));
    for jobs in [2, 8] {
        let exec = ExecConfig::with_jobs(jobs);
        let parallel = figures::fig6_2_default_buffers(&scale, true, &exec);
        assert_eq!(
            serial.to_csv(),
            parallel.to_csv(),
            "--jobs {jobs} must render the same CSV bytes as --jobs 1"
        );
        assert_eq!(
            serial.to_table(),
            parallel.to_table(),
            "--jobs {jobs} must render the same table bytes as --jobs 1"
        );
    }
}

#[test]
fn warm_cache_reproduces_cold_run_exactly() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 29_000,
        repeats: 2,
        rates: vec![Some(300.0), None],
    };
    // Cold: make sure nothing of this configuration is cached, then run.
    RunCache::global().clear();
    let cold_exec = ExecConfig::with_jobs(4);
    let cold = figures::fig6_6_filter(&scale, true, &cold_exec);
    assert!(
        cold_exec.stats.cells_run() >= 1,
        "cold run must simulate at least one cell"
    );

    // Warm: same figure again in the same process — every cell must come
    // from the cache and the rendered bytes must not change.
    let warm_exec = ExecConfig::with_jobs(4);
    let warm = figures::fig6_6_filter(&scale, true, &warm_exec);
    assert_eq!(
        warm_exec.stats.cells_run(),
        0,
        "warm run must simulate nothing"
    );
    assert_eq!(
        warm_exec.stats.cells_cached(),
        cold_exec.stats.cells_run() + cold_exec.stats.cells_cached(),
        "warm run must serve every cell from cache"
    );
    assert_eq!(cold.to_csv(), warm.to_csv());
    assert_eq!(cold.to_table(), warm.to_table());

    // And a cache flush in between must still not change the bytes.
    RunCache::global().clear();
    let reran = figures::fig6_6_filter(&scale, true, &ExecConfig::with_jobs(4));
    assert_eq!(cold.to_csv(), reran.to_csv());
}

#[test]
fn streaming_pipeline_is_byte_identical_to_materialized() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 33_000,
        repeats: 2,
        rates: vec![Some(250.0), None],
    };
    // Reference: the materialized pre-pipeline path, freshly computed.
    RunCache::global().clear();
    let ref_exec = ExecConfig::with_jobs(1).with_pipeline(PipelineConfig::materialized());
    let reference = figures::fig6_2_default_buffers(&scale, true, &ref_exec);
    assert!(
        ref_exec.stats.cells_run() >= 1,
        "reference must actually simulate"
    );
    for chunk in [1usize, 1009, 4096] {
        for jobs in [1usize, 4] {
            // Flush the cache so the streamed run really recomputes every
            // cell — pipeline shape is excluded from the cell key, so a
            // warm cache would make this comparison vacuous.
            RunCache::global().clear();
            // Stream sharing off, so every chunk size really re-chunks
            // the generator instead of subscribing to the first run's
            // published (producer-sized) chunks.
            let exec = ExecConfig::with_jobs(jobs)
                .with_pipeline(PipelineConfig::with_chunk(chunk).with_stream_cache(0));
            let streamed = figures::fig6_2_default_buffers(&scale, true, &exec);
            assert!(
                exec.stats.cells_run() >= 1,
                "--chunk {chunk} --jobs {jobs} must recompute, not hit the cache"
            );
            assert_eq!(
                reference.to_csv(),
                streamed.to_csv(),
                "--chunk {chunk} --jobs {jobs} must render the same CSV bytes as the materialized path"
            );
            assert_eq!(
                reference.to_table(),
                streamed.to_table(),
                "--chunk {chunk} --jobs {jobs} must render the same table bytes as the materialized path"
            );
        }
    }
}

#[test]
fn stream_cache_on_and_off_render_identical_csv() {
    let _guard = CACHE_CLEAR_LOCK.lock().unwrap();
    let scale = Scale {
        count: 35_000,
        repeats: 2,
        rates: vec![Some(220.0), None],
    };
    // Reference: stream sharing off — every cell regenerates its stream.
    RunCache::global().clear();
    let off_exec =
        ExecConfig::with_jobs(4).with_pipeline(PipelineConfig::streaming().with_stream_cache(0));
    let off = figures::fig6_2_default_buffers(&scale, true, &off_exec);
    assert!(off_exec.stats.cells_run() >= 1, "off run must simulate");
    assert_eq!(
        off_exec.stats.streams_generated() + off_exec.stats.streams_shared(),
        0,
        "--stream-cache off must never consult the stream cache"
    );
    // Sharing on (the default): byte-identical CSV and table.
    RunCache::global().clear();
    let on_exec = ExecConfig::with_jobs(4);
    let on = figures::fig6_2_default_buffers(&scale, true, &on_exec);
    assert!(
        on_exec.stats.streams_generated() >= 1,
        "on run must publish its streams"
    );
    assert_eq!(
        off.to_csv(),
        on.to_csv(),
        "--stream-cache on/off must render the same CSV bytes"
    );
    assert_eq!(off.to_table(), on.to_table());
}

#[test]
fn repeats_use_distinct_streams_but_stay_deterministic() {
    // With >1 repeats the per-repeat seed derivation must give each
    // repeat its own stream (otherwise the median over repeats is just
    // the single-run value and the thesis' §6.2.2 calculation is moot),
    // and the whole aggregate must still be reproducible.
    let scale_1 = Scale {
        count: 27_000,
        repeats: 1,
        rates: vec![None],
    };
    let scale_5 = Scale {
        count: 27_000,
        repeats: 5,
        rates: vec![None],
    };
    let one = figures::fig6_2_default_buffers(&scale_1, false, &ExecConfig::with_jobs(8));
    let five_a = figures::fig6_2_default_buffers(&scale_5, false, &ExecConfig::with_jobs(8));
    let five_b = figures::fig6_2_default_buffers(&scale_5, false, &ExecConfig::with_jobs(3));
    assert_eq!(
        five_a.to_csv(),
        five_b.to_csv(),
        "repeat medians must not depend on the job count"
    );
    // Not a hard guarantee per-point, but over a whole overloaded sweep
    // the 5-repeat median CSV differing from the single run shows the
    // repeats really sampled different streams.
    assert_ne!(
        one.to_csv(),
        five_a.to_csv(),
        "5 repeats must not collapse to the single-repeat run"
    );
}
