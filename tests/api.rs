//! Public-API integration: the workflows a downstream user follows, via
//! the façade crate's prelude.

use pcapbench::prelude::*;
use pcapbench::{bpf, pcapfile, pktgen, profiling, wire, zdeflate};
use std::collections::HashMap;

/// The quickstart path: session → workload → machine → stats.
#[test]
fn end_to_end_capture_session() {
    let mut session = Pcap::open_live("em0", 96, true, 20);
    session
        .set_filter_expression("udp and dst port 9")
        .expect("filter compiles");
    session.set_record(true);

    let cycle = CycleConfig::mwn(25_000, 7);
    let mut generator = Generator::new(
        PktgenConfig {
            count: cycle.count,
            size: cycle.size.clone(),
            ..PktgenConfig::default()
        },
        TxModel::syskonnect(),
        cycle.seed,
    );
    generator.set_target_rate(300.0, cycle.mean_frame);

    let sim = SimConfig {
        apps: vec![session.app_config()],
        ..SimConfig::default()
    };
    let report =
        MachineSim::new(MachineSpec::moorhen(), sim).run(generator.map(|tp| (tp.time, tp.packet)));

    let stats = Pcap::stats(&report.apps[0], report.nic_ring_drops);
    assert_eq!(stats.ps_recv, 25_000);
    assert_eq!(stats.ps_drop, 0);
    assert_eq!(report.apps[0].received, 25_000);

    // pcap_loop-style dispatch over recorded packets.
    let mut caplens = 0u64;
    let n = Pcap::dispatch(&report.apps[0], |p| caplens += p.caplen as u64);
    assert_eq!(n, 25_000);
    assert!(caplens <= 96 * 25_000);

    // The profiling pipeline runs over the report's samples.
    let busy = profiling::trimmed_busy_percent(&report.samples, 95.0);
    assert!((0.0..=100.0).contains(&busy));
}

/// The savefile round trip: capture → dump → re-read → summarize →
/// two-stage distribution → pgset commands → generator.
#[test]
fn trace_tooling_round_trip() {
    let cycle = CycleConfig::mwn(5_000, 3);
    let make_gen = || {
        Generator::new(
            PktgenConfig {
                count: cycle.count,
                size: cycle.size.clone(),
                ..PktgenConfig::default()
            },
            TxModel::syskonnect(),
            cycle.seed,
        )
    };
    // Write a savefile straight from the generator.
    let mut w = pcapfile::PcapWriter::new(Vec::new(), 1514).unwrap();
    for tp in make_gen() {
        w.write_packet(
            tp.time.as_nanos(),
            tp.packet.frame_len,
            &tp.packet.materialize(1514),
        )
        .unwrap();
    }
    let file = w.finish().unwrap();

    // Summarize sizes and rebuild a generator distribution from it.
    let hist = pcapfile::SizeHistogram::from_pcap(&file).unwrap();
    assert_eq!(hist.total(), 5_000);
    let procfs = pktgen::convert(
        pktgen::InputKind::Trace,
        &file,
        pktgen::OutputKind::Procfs {
            surround_pgset: false,
        },
        &pktgen::DistConfig::default(),
        ' ',
    )
    .unwrap();
    let mut ctl = PktgenControl::new();
    for line in procfs.lines() {
        ctl.pgset(line).unwrap();
    }
    assert!(ctl.pktsize_real());

    // And replay the very same savefile as a packet source.
    let replayed: Vec<_> = pktgen::replay_pcap(&file).unwrap().collect();
    assert_eq!(replayed.len(), 5_000);
    let index: HashMap<u64, wire::SimPacket> =
        make_gen().map(|tp| (tp.packet.seq, tp.packet)).collect();
    // Replayed packets store a fixed 64-byte prefix; the original stores
    // only up to its header+stamp. The bytes agree wherever both exist.
    assert_eq!(
        replayed[42].packet.materialize(64),
        index[&42].materialize(64),
        "replayed packets carry the original bytes"
    );
}

/// BPF toolchain round trip: expression → program → disassembly →
/// assembly → same verdicts.
#[test]
fn bpf_toolchain_round_trip() {
    let expr = bpf::programs::fig65_expression();
    let prog = bpf::compile(&expr, 96).unwrap();
    assert_eq!(prog.len(), 50);
    let text = bpf::asm::disasm(&prog);
    let back = bpf::asm::assemble(&text).unwrap();
    assert_eq!(back, prog);
    bpf::validate(&back).unwrap();
}

/// Compression round trip through the capture-load substrate.
#[test]
fn compression_substrate() {
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 97) as u8).collect();
    for level in [0u8, 3, 9] {
        let mut gz = zdeflate::GzWriter::new(level);
        gz.write(&payload);
        let out = gz.finish();
        assert_eq!(zdeflate::gunzip(&out).unwrap(), payload, "level {level}");
    }
}
