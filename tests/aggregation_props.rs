//! Property tests for the §6.2.2 result calculation: the median
//! aggregation of per-repeat cells into a [`PointResult`], and the
//! derived `Experiment` queries.

use pcapbench::core::{Experiment, Series, SeriesPoint};
use pcapbench::testbed::{aggregate_point, CellResult, CellSut};
use proptest::collection::vec;
use proptest::prelude::*;

const NSUTS: usize = 3;

/// One SUT's cell numbers with the invariant every real run report
/// satisfies: worst ≤ capture ≤ best.
fn sut_strategy() -> impl Strategy<Value = CellSut> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=100.0).prop_map(|(a, b, c, cpu)| {
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        CellSut {
            capture: v[1],
            worst: v[0],
            best: v[2],
            cpu_busy: cpu,
        }
    })
}

/// Between 1 and 9 repeats (the thesis used 7) of an `NSUTS`-wide cell.
fn cells_strategy() -> impl Strategy<Value = Vec<CellResult>> {
    vec(
        (0.0f64..=1000.0, vec(sut_strategy(), NSUTS)).prop_map(|(achieved_mbps, suts)| {
            CellResult {
                achieved_mbps,
                suts,
            }
        }),
        1..=9,
    )
}

fn labels() -> Vec<String> {
    (0..NSUTS).map(|i| format!("sut-{i}")).collect()
}

/// Deterministic splitmix64 for in-test shuffling.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn shuffled(cells: &[CellResult], seed: u64) -> Vec<CellResult> {
    let mut out = cells.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #[test]
    fn aggregate_preserves_worst_mean_best_ordering(cells in cells_strategy()) {
        let point = aggregate_point(Some(500.0), 10_000, &labels(), &cells);
        prop_assert_eq!(point.suts.len(), NSUTS);
        for sut in &point.suts {
            prop_assert!(
                sut.capture_worst <= sut.capture + 1e-12,
                "median worst {} > median capture {}",
                sut.capture_worst,
                sut.capture
            );
            prop_assert!(
                sut.capture <= sut.capture_best + 1e-12,
                "median capture {} > median best {}",
                sut.capture,
                sut.capture_best
            );
        }
        // The median achieved rate never leaves the input range.
        let lo = cells.iter().map(|c| c.achieved_mbps).fold(f64::INFINITY, f64::min);
        let hi = cells.iter().map(|c| c.achieved_mbps).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(point.achieved_mbps >= lo && point.achieved_mbps <= hi);
    }

    #[test]
    fn aggregate_is_invariant_under_repeat_order(
        cells in cells_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        // The worker pool completes repeats in arbitrary order; the §6.2.2
        // median must not care.
        let in_order = aggregate_point(None, 10_000, &labels(), &cells);
        let permuted = aggregate_point(None, 10_000, &labels(), &shuffled(&cells, seed));
        prop_assert_eq!(format!("{in_order:?}"), format!("{permuted:?}"));
    }

    #[test]
    fn knee_is_the_first_point_below_threshold(
        captures in vec(0.0f64..=100.0, 1..20),
        threshold in 0.0f64..=100.0,
    ) {
        let points: Vec<SeriesPoint> = captures
            .iter()
            .enumerate()
            .map(|(i, &c)| SeriesPoint {
                x: 100.0 * (i as f64 + 1.0),
                capture: c,
                capture_worst: c,
                capture_best: c,
                cpu: 0.0,
            })
            .collect();
        let e = Experiment {
            id: "prop".into(),
            thesis_ref: "property fixture".into(),
            title: "knee".into(),
            xlabel: "x".into(),
            ylabel: "capture[%]".into(),
            series: vec![Series { label: "only".into(), points }],
            notes: vec![],
        };
        let expected = captures
            .iter()
            .position(|&c| c < threshold)
            .map(|i| 100.0 * (i as f64 + 1.0));
        prop_assert_eq!(e.knee("only", threshold), expected);
    }
}
