//! Golden-output snapshots for the experiment renderers.
//!
//! The fixtures under `tests/golden/` are checked in; the tests compare
//! `to_table()` / `to_csv()` byte-for-byte against them, pinning the
//! RFC-4180 quoting path, ragged-series rendering, and the header/notes
//! layout. Regenerate after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use pcapbench::core::{Experiment, Series, SeriesPoint};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its checked-in golden output; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn pt(x: f64, capture: f64, worst: f64, best: f64, cpu: f64) -> SeriesPoint {
    SeriesPoint {
        x,
        capture,
        capture_worst: worst,
        capture_best: best,
        cpu,
    }
}

/// A hand-built experiment exercising every rendering corner at once:
/// quoted labels (comma, double quote), a label long enough to truncate,
/// ragged series lengths, and notes.
fn tricky_experiment() -> Experiment {
    Experiment {
        id: "golden-1".into(),
        thesis_ref: "synthetic fixture, no thesis figure".into(),
        title: "Renderer corner cases".into(),
        xlabel: "Datarate [Mbit/s]".into(),
        ylabel: "capture[%]".into(),
        series: vec![
            Series {
                label: "swan, default buffers".into(),
                points: vec![
                    pt(100.0, 100.0, 99.5, 100.0, 12.0),
                    pt(500.0, 87.25, 80.125, 93.5, 64.0),
                    pt(941.0, 43.75, 40.0, 51.5, 100.0),
                ],
            },
            Series {
                label: "snipe \"tuned\" profile".into(),
                points: vec![
                    pt(100.0, 100.0, 100.0, 100.0, 15.0),
                    // Ragged: this series has one point fewer.
                    pt(500.0, 91.0, 90.0, 92.0, 58.0),
                ],
            },
            Series {
                label: "a deliberately overlong series label that the table truncates".into(),
                points: vec![
                    pt(100.0, 99.0, 98.0, 100.0, 20.0),
                    pt(500.0, 70.5, 65.0, 76.0, 88.0),
                    pt(941.0, 31.0, 28.5, 33.5, 100.0),
                ],
            },
        ],
        notes: vec![
            "quoted, ragged and truncated — all in one figure".into(),
            "second note line".into(),
        ],
    }
}

#[test]
fn table_rendering_matches_golden() {
    assert_matches_golden("tricky.table.txt", &tricky_experiment().to_table());
}

#[test]
fn csv_rendering_matches_golden() {
    let csv = tricky_experiment().to_csv();
    // The quoting invariants the fixture pins, stated directly too.
    assert!(csv.contains("\"swan, default buffers\""));
    assert!(csv.contains("\"snipe \"\"tuned\"\" profile\""));
    assert_matches_golden("tricky.csv", &csv);
}

#[test]
fn empty_experiment_renders_header_only() {
    let mut e = tricky_experiment();
    e.series.clear();
    e.notes.clear();
    let csv = e.to_csv();
    assert_eq!(
        csv,
        "experiment,series,x,capture_pct,worst_pct,best_pct,cpu_pct\n"
    );
    assert_matches_golden("empty.table.txt", &e.to_table());
}
